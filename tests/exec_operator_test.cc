#include <gtest/gtest.h>

#include "ishare/exec/aggregate.h"
#include "ishare/exec/hash_join.h"
#include "ishare/exec/phys_op.h"
#include "test_util.h"

namespace ishare {
namespace {

DeltaTuple T(Row row, std::vector<QueryId> qs, int32_t w = 1) {
  return DeltaTuple(std::move(row), QuerySet::FromIds(qs), w);
}

// GCC 12 falsely flags the variant's string alternative during the vector
// move (PR 105562-style); see the matching note in exec/aggregate.cc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Row R(std::initializer_list<int64_t> vals) {
  Row r;
  r.reserve(vals.size());
  for (int64_t v : vals) r.push_back(Value(v));
  return r;
}
#pragma GCC diagnostic pop

// --- FilterOp: marking-select semantics ---

TEST(FilterOpTest, MarksPerQueryBits) {
  Schema s({{"x", DataType::kInt64}});
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("x"), Lit(10));
  preds[1] = Gt(Col("x"), Lit(20));
  PlanNodePtr scan_stub = PlanNode::MakeSubplanInput(
      0, s, QuerySet::FromIds({0, 1, 2}));
  PlanNodePtr node = PlanNode::MakeFilter(scan_stub, std::move(preds),
                                          QuerySet::FromIds({0, 1, 2}));
  FilterOp op(node.get(), s);

  // q2 has no predicate: pass-through.
  DeltaBatch out = op.Process(0, {T(R({15}), {0, 1, 2})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::FromIds({0, 2}));  // q1 rejected (15<=20)

  out = op.Process(0, {T(R({25}), {0, 1, 2})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::FromIds({0, 1, 2}));

  // All marked queries reject and no pass-through bit: dropped.
  out = op.Process(0, {T(R({5}), {0, 1})});
  EXPECT_TRUE(out.empty());
}

TEST(FilterOpTest, SharedPredicateEvaluatedOnce) {
  Schema s({{"x", DataType::kInt64}});
  ExprPtr shared_pred = Gt(Col("x"), Lit(10));
  std::map<QueryId, ExprPtr> preds;
  preds[0] = shared_pred;
  preds[1] = shared_pred;  // same object => one predicate group
  PlanNodePtr stub =
      PlanNode::MakeSubplanInput(0, s, QuerySet::FromIds({0, 1}));
  PlanNodePtr node =
      PlanNode::MakeFilter(stub, std::move(preds), QuerySet::FromIds({0, 1}));
  FilterOp op(node.get(), s);
  DeltaBatch out = op.Process(0, {T(R({15}), {0, 1}), T(R({5}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::FromIds({0, 1}));
}

TEST(FilterOpTest, DeletePassesThroughWithWeight) {
  Schema s({{"x", DataType::kInt64}});
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("x"), Lit(0));
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, QuerySet::Single(0));
  PlanNodePtr node =
      PlanNode::MakeFilter(stub, std::move(preds), QuerySet::Single(0));
  FilterOp op(node.get(), s);
  DeltaBatch out = op.Process(0, {T(R({5}), {0}, -1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, -1);
}

// --- SubplanInputOp masking ---

TEST(SubplanInputOpTest, MasksToSubplanQueries) {
  Schema s({{"x", DataType::kInt64}});
  PlanNodePtr node = PlanNode::MakeSubplanInput(0, s, QuerySet::Single(1));
  SubplanInputOp op(node.get());
  DeltaBatch out = op.Process(0, {T(R({1}), {0, 1}), T(R({2}), {0})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::Single(1));
}

// --- Inner join ---

class InnerJoinFixture : public ::testing::Test {
 protected:
  InnerJoinFixture() {
    left_schema_ = Schema({{"lk", DataType::kInt64}, {"lv", DataType::kInt64}});
    right_schema_ =
        Schema({{"rk", DataType::kInt64}, {"rv", DataType::kInt64}});
    QuerySet qs = QuerySet::FromIds({0, 1});
    PlanNodePtr l = PlanNode::MakeSubplanInput(0, left_schema_, qs);
    PlanNodePtr r = PlanNode::MakeSubplanInput(1, right_schema_, qs);
    node_ = PlanNode::MakeJoin(l, r, {"lk"}, {"rk"}, JoinType::kInner, qs);
    op_ = std::make_unique<HashJoinOp>(node_.get(), left_schema_,
                                       right_schema_);
  }
  Schema left_schema_, right_schema_;
  PlanNodePtr node_;
  std::unique_ptr<HashJoinOp> op_;
};

TEST_F(InnerJoinFixture, MatchesOnKey) {
  EXPECT_TRUE(op_->Process(0, {T(R({1, 10}), {0, 1})}).empty());
  DeltaBatch out = op_->Process(1, {T(R({1, 20}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, R({1, 10, 1, 20}));
  EXPECT_EQ(out[0].qset, QuerySet::FromIds({0, 1}));
  EXPECT_EQ(out[0].weight, 1);
}

TEST_F(InnerJoinFixture, NoCrossKeyMatch) {
  op_->Process(0, {T(R({1, 10}), {0, 1})});
  EXPECT_TRUE(op_->Process(1, {T(R({2, 20}), {0, 1})}).empty());
}

TEST_F(InnerJoinFixture, QuerySetsIntersect) {
  op_->Process(0, {T(R({1, 10}), {0})});
  DeltaBatch out = op_->Process(1, {T(R({1, 20}), {1})});
  EXPECT_TRUE(out.empty());  // disjoint query sets
  out = op_->Process(1, {T(R({1, 30}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::Single(0));
}

TEST_F(InnerJoinFixture, NoDoubleCountingWithinBatchPair) {
  // ΔL then ΔR in the same execution must produce exactly one joined tuple.
  DeltaBatch o1 = op_->Process(0, {T(R({7, 1}), {0, 1})});
  DeltaBatch o2 = op_->Process(1, {T(R({7, 2}), {0, 1})});
  EXPECT_EQ(o1.size() + o2.size(), 1u);
}

TEST_F(InnerJoinFixture, DeleteRetractsJoinResults) {
  op_->Process(0, {T(R({1, 10}), {0, 1})});
  op_->Process(1, {T(R({1, 20}), {0, 1})});
  DeltaBatch out = op_->Process(0, {T(R({1, 10}), {0, 1}, -1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, -1);
  EXPECT_EQ(op_->LeftStateSize(), 0);
}

TEST_F(InnerJoinFixture, PartialQueryDeleteSplitsEntry) {
  // Insert under {0,1}, then delete only q0's copy (the aggregate-churn
  // pattern that requires per-query state counters).
  op_->Process(0, {T(R({1, 10}), {0, 1})});
  op_->Process(0, {T(R({1, 10}), {0}, -1)});
  DeltaBatch out = op_->Process(1, {T(R({1, 20}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::Single(1));
}

TEST_F(InnerJoinFixture, MultiplicityProducts) {
  op_->Process(0, {T(R({1, 10}), {0, 1}), T(R({1, 10}), {0, 1})});
  DeltaBatch out = op_->Process(1, {T(R({1, 20}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, 2);
}

// --- Semi / anti join ---

class SemiAntiFixture : public ::testing::Test {
 protected:
  void Init(JoinType type) {
    left_schema_ = Schema({{"lk", DataType::kInt64}});
    right_schema_ = Schema({{"rk", DataType::kInt64}});
    QuerySet qs = QuerySet::FromIds({0, 1});
    PlanNodePtr l = PlanNode::MakeSubplanInput(0, left_schema_, qs);
    PlanNodePtr r = PlanNode::MakeSubplanInput(1, right_schema_, qs);
    node_ = PlanNode::MakeJoin(l, r, {"lk"}, {"rk"}, type, qs);
    op_ = std::make_unique<HashJoinOp>(node_.get(), left_schema_,
                                       right_schema_);
  }
  Schema left_schema_, right_schema_;
  PlanNodePtr node_;
  std::unique_ptr<HashJoinOp> op_;
};

TEST_F(SemiAntiFixture, SemiEmitsOnLaterMatch) {
  Init(JoinType::kLeftSemi);
  EXPECT_TRUE(op_->Process(0, {T(R({1}), {0, 1})}).empty());
  DeltaBatch out = op_->Process(1, {T(R({1}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, R({1}));
  EXPECT_EQ(out[0].weight, 1);
  // Second right match must not re-emit.
  EXPECT_TRUE(op_->Process(1, {T(R({1}), {0, 1})}).empty());
}

TEST_F(SemiAntiFixture, SemiRetractsWhenMatchesVanish) {
  Init(JoinType::kLeftSemi);
  op_->Process(1, {T(R({1}), {0, 1})});
  DeltaBatch out = op_->Process(0, {T(R({1}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);  // immediate match
  out = op_->Process(1, {T(R({1}), {0, 1}, -1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, -1);
}

TEST_F(SemiAntiFixture, AntiEmitsUnmatchedAndRetractsOnMatch) {
  Init(JoinType::kLeftAnti);
  DeltaBatch out = op_->Process(0, {T(R({1}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);  // no right matches yet
  out = op_->Process(1, {T(R({1}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, -1);  // retract: now matched
}

TEST_F(SemiAntiFixture, SemiPerQueryMatching) {
  Init(JoinType::kLeftSemi);
  op_->Process(1, {T(R({1}), {1})});  // right row only valid for q1
  DeltaBatch out = op_->Process(0, {T(R({1}), {0, 1})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::Single(1));
}

// --- Aggregate ---

class AggFixture : public ::testing::Test {
 protected:
  void Init(std::vector<AggSpec> specs, QuerySet qs = QuerySet::FromIds({0})) {
    input_schema_ =
        Schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}});
    PlanNodePtr stub = PlanNode::MakeSubplanInput(0, input_schema_, qs);
    node_ = PlanNode::MakeAggregate(stub, {"g"}, std::move(specs), qs);
    op_ = std::make_unique<AggregateOp>(node_.get(), input_schema_);
  }
  Schema input_schema_;
  PlanNodePtr node_;
  std::unique_ptr<AggregateOp> op_;
};

TEST_F(AggFixture, SumFirstExecutionEmitsInsertOnly) {
  Init({SumAgg(Col("v"), "s")});
  op_->Process(0, {T(R({1, 10}), {0}), T(R({1, 5}), {0}), T(R({2, 7}), {0})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& t : out) EXPECT_EQ(t.weight, 1);
}

TEST_F(AggFixture, SumSecondExecutionEmitsDeletePlusInsert) {
  Init({SumAgg(Col("v"), "s")});
  op_->Process(0, {T(R({1, 10}), {0})});
  op_->EndExecution();
  op_->Process(0, {T(R({1, 5}), {0})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 2u);
  // One delete of the old row, one insert of the new.
  int64_t net = 0;
  for (const auto& t : out) net += t.weight;
  EXPECT_EQ(net, 0);
  bool found_new = false;
  for (const auto& t : out) {
    if (t.weight == 1) {
      EXPECT_EQ(t.row, R({1, 15}));
      found_new = true;
    } else {
      EXPECT_EQ(t.row, R({1, 10}));
    }
  }
  EXPECT_TRUE(found_new);
}

TEST_F(AggFixture, UnchangedGroupEmitsNothing) {
  Init({SumAgg(Col("v"), "s")});
  op_->Process(0, {T(R({1, 10}), {0})});
  op_->EndExecution();
  // Insert and delete cancel: sum unchanged.
  op_->Process(0, {T(R({1, 5}), {0}), T(R({1, 5}), {0}, -1)});
  EXPECT_TRUE(op_->EndExecution().empty());
}

TEST_F(AggFixture, GroupVanishesOnFullDelete) {
  Init({SumAgg(Col("v"), "s"), CountAgg("c")});
  op_->Process(0, {T(R({1, 10}), {0})});
  op_->EndExecution();
  op_->Process(0, {T(R({1, 10}), {0}, -1)});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].weight, -1);
}

TEST_F(AggFixture, PerQueryStateWithMarkingSelects) {
  Init({SumAgg(Col("v"), "s")}, QuerySet::FromIds({0, 1}));
  // q0 sees both tuples; q1 sees only the first.
  op_->Process(0, {T(R({1, 10}), {0, 1}), T(R({1, 5}), {0})});
  DeltaBatch out = op_->EndExecution();
  // q0: (1,15); q1: (1,10) — different rows, no coalescing possible.
  ASSERT_EQ(out.size(), 2u);
  std::unordered_map<Row, QuerySet, RowHasher> by_row;
  for (const auto& t : out) by_row[t.row] = t.qset;
  EXPECT_EQ(by_row[R({1, 15})], QuerySet::Single(0));
  EXPECT_EQ(by_row[R({1, 10})], QuerySet::Single(1));
}

TEST_F(AggFixture, EqualRowsCoalesceAcrossQueries) {
  Init({SumAgg(Col("v"), "s")}, QuerySet::FromIds({0, 1}));
  op_->Process(0, {T(R({1, 10}), {0, 1})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qset, QuerySet::FromIds({0, 1}));
}

TEST_F(AggFixture, MinMaxMaintainExtremum) {
  Init({MaxAgg(Col("v"), "mx"), MinAgg(Col("v"), "mn")});
  op_->Process(0, {T(R({1, 10}), {0}), T(R({1, 30}), {0}), T(R({1, 20}), {0})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, R({1, 30, 10}));
}

TEST_F(AggFixture, MaxDeleteTriggersRescan) {
  Init({MaxAgg(Col("v"), "mx")});
  op_->Process(0, {T(R({1, 10}), {0}), T(R({1, 30}), {0})});
  op_->EndExecution();
  double state_before = op_->work().state;
  op_->Process(0, {T(R({1, 30}), {0}, -1)});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 2u);  // delete (1,30), insert (1,10)
  std::unordered_map<Row, int64_t, RowHasher> net;
  for (const auto& t : out) net[t.row] += t.weight;
  EXPECT_EQ(net[R({1, 30})], -1);
  EXPECT_EQ(net[R({1, 10})], 1);
  EXPECT_GT(op_->work().state, state_before);  // rescan charged
}

TEST_F(AggFixture, CountDistinct) {
  Init({CountDistinctAgg(Col("v"), "d")});
  op_->Process(0, {T(R({1, 10}), {0}), T(R({1, 10}), {0}), T(R({1, 20}), {0})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, R({1, 2}));
  // Deleting one of the duplicate 10s must not change the distinct count.
  op_->Process(0, {T(R({1, 10}), {0}, -1)});
  EXPECT_TRUE(op_->EndExecution().empty());
  // Deleting the second one does.
  op_->Process(0, {T(R({1, 10}), {0}, -1)});
  out = op_->EndExecution();
  ASSERT_EQ(out.size(), 2u);
}

TEST_F(AggFixture, AvgComputesMean) {
  Init({AvgAgg(Col("v"), "a")});
  op_->Process(0, {T(R({1, 10}), {0}), T(R({1, 20}), {0})});
  DeltaBatch out = op_->EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].row[1].AsDouble(), 15.0);
}

TEST(GlobalAggTest, EmptyGroupByProducesSingleRow) {
  Schema s({{"v", DataType::kInt64}});
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node =
      PlanNode::MakeAggregate(stub, {}, {SumAgg(Col("v"), "s")}, qs);
  AggregateOp op(node.get(), s);
  op.Process(0, {T(R({10}), {0}), T(R({32}), {0})});
  DeltaBatch out = op.EndExecution();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, R({42}));
}

}  // namespace
}  // namespace ishare
