#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

// q0: SELECT o_custkey, SUM(o_amount) FROM orders GROUP BY o_custkey
// q1: SELECT MAX(total) over the same aggregate, restricted to amount > 50.
std::vector<QueryPlan> MakeSharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "k"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "max_total")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

ResultMap RunAndMaterialize(TestDb* db, const SubplanGraph& g,
                            const PaceConfig& paces, QueryId q,
                            RunResult* result_out = nullptr) {
  db->source.Reset();
  PaceExecutor exec(&g, &db->source);
  RunResult r = exec.Run(paces).value();
  if (result_out != nullptr) *result_out = r;
  return MaterializeResult(*exec.query_output(q), q);
}

TEST(PaceExecutorTest, BatchMatchesDirectComputation) {
  TestDb db(/*n_orders=*/200, /*n_customers=*/8);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  ResultMap res = RunAndMaterialize(&db, g, {1, 1, 1}, 0);
  // Expect one result row per customer that has at least one order.
  EXPECT_GT(res.size(), 0u);
  EXPECT_LE(res.size(), 8u);
  for (const auto& [row, mult] : res) EXPECT_EQ(mult, 1);
}

// The central engine invariant: any pace configuration converges to the
// batch result for every query.
class PaceEquivalence : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(PaceEquivalence, IncrementalEqualsBatch) {
  TestDb db(/*n_orders=*/150, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  ASSERT_EQ(g.num_subplans(), 3);
  ResultMap batch0 = RunAndMaterialize(&db, g, {1, 1, 1}, 0);
  ResultMap batch1 = RunAndMaterialize(&db, g, {1, 1, 1}, 1);

  PaceConfig paces = GetParam();
  ResultMap inc0 = RunAndMaterialize(&db, g, paces, 0);
  ResultMap inc1 = RunAndMaterialize(&db, g, paces, 1);
  EXPECT_EQ(inc0, batch0);
  EXPECT_EQ(inc1, batch1);
}

INSTANTIATE_TEST_SUITE_P(
    Paces, PaceEquivalence,
    ::testing::Values(std::vector<int>{2, 2, 2}, std::vector<int>{5, 5, 5},
                      std::vector<int>{1, 1, 7}, std::vector<int>{3, 1, 9},
                      std::vector<int>{10, 10, 10},
                      std::vector<int>{1, 2, 4}));

TEST(PaceExecutorTest, EagerExecutionCostsMoreTotalWork) {
  TestDb db(/*n_orders=*/400, /*n_customers=*/10);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  RunResult lazy, eager;
  RunAndMaterialize(&db, g, {1, 1, 1}, 0, &lazy);
  RunAndMaterialize(&db, g, {20, 20, 20}, 0, &eager);
  EXPECT_GT(eager.total_work, lazy.total_work);
}

TEST(PaceExecutorTest, EagerExecutionReducesFinalWork) {
  TestDb db(/*n_orders=*/400, /*n_customers=*/10);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  RunResult lazy, eager;
  RunAndMaterialize(&db, g, {1, 1, 1}, 0, &lazy);
  RunAndMaterialize(&db, g, {20, 20, 20}, 0, &eager);
  EXPECT_LT(eager.query_final_work[0], lazy.query_final_work[0]);
  EXPECT_LT(eager.query_final_work[1], lazy.query_final_work[1]);
}

TEST(PaceExecutorTest, FinalWorkIsSumOfQuerySubplans) {
  TestDb db(/*n_orders=*/100, /*n_customers=*/5);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  RunResult r;
  RunAndMaterialize(&db, g, {4, 2, 2}, 0, &r);
  for (QueryId q = 0; q < 2; ++q) {
    double expect = 0;
    for (int s : g.SubplansOfQuery(q)) expect += r.subplans[s].final_work;
    EXPECT_DOUBLE_EQ(r.query_final_work[q], expect);
  }
}

TEST(PaceExecutorTest, ExecutionCountsMatchPaces) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/5);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  RunResult r;
  PaceConfig paces = {6, 3, 2};
  RunAndMaterialize(&db, g, paces, 0, &r);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(r.subplans[s].work_per_exec.size(),
              static_cast<size_t>(paces[s]))
        << "subplan " << s;
    EXPECT_EQ(r.subplans[s].exec_fraction.back(), 1.0);
  }
}

TEST(PaceExecutorTest, JoinPlanEquivalence) {
  TestDb db(/*n_orders=*/200, /*n_customers=*/10);
  // Join orders with customer, filter region, then aggregate per customer.
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr join =
      b.Join(b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(20.0))),
             b.ScanFiltered("customer", Eq(Col("c_region"), Lit("ASIA"))),
             {"o_custkey"}, {"c_custkey"});
  PlanNodePtr root = b.Aggregate(join, {"c_custkey"},
                                 {SumAgg(Col("o_amount"), "total"),
                                  CountAgg("orders_cnt")});
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "j", root}});
  ASSERT_EQ(g.num_subplans(), 1);
  ResultMap batch = RunAndMaterialize(&db, g, {1}, 0);
  ResultMap inc = RunAndMaterialize(&db, g, {7}, 0);
  EXPECT_EQ(inc, batch);
  EXPECT_GT(batch.size(), 0u);
}

TEST(PaceExecutorTest, SemiJoinPlanEquivalence) {
  TestDb db(/*n_orders=*/150, /*n_customers=*/30);
  // Customers that have at least one large order.
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr root =
      b.Join(b.Scan("customer"),
             b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(80.0))),
             {"c_custkey"}, {"o_custkey"}, JoinType::kLeftSemi);
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "semi", root}});
  ResultMap batch = RunAndMaterialize(&db, g, {1}, 0);
  ResultMap inc = RunAndMaterialize(&db, g, {9}, 0);
  EXPECT_EQ(inc, batch);
  EXPECT_GT(batch.size(), 0u);
}

TEST(PaceExecutorTest, AntiJoinPlanEquivalence) {
  TestDb db(/*n_orders=*/150, /*n_customers=*/30);
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr root =
      b.Join(b.Scan("customer"),
             b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(80.0))),
             {"c_custkey"}, {"o_custkey"}, JoinType::kLeftAnti);
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "anti", root}});
  ResultMap batch = RunAndMaterialize(&db, g, {1}, 0);
  ResultMap inc = RunAndMaterialize(&db, g, {9}, 0);
  EXPECT_EQ(inc, batch);
  // Semi + anti partitions the customers.
  EXPECT_GT(batch.size(), 0u);
}

TEST(PaceExecutorTest, MaxOverSumChurnsUnderEagerness) {
  // The Q15 pattern: MAX over per-group SUM. Eager execution repeatedly
  // deletes the max and rescans; lazy execution avoids it entirely.
  TestDb db(/*n_orders=*/600, /*n_customers=*/12);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  RunResult lazy, eager;
  RunAndMaterialize(&db, g, {1, 1, 1}, 1, &lazy);
  RunAndMaterialize(&db, g, {30, 30, 30}, 1, &eager);
  int max_subplan = g.query_root(1);
  EXPECT_GT(eager.subplans[max_subplan].total_work,
            3 * lazy.subplans[max_subplan].total_work);
}

}  // namespace
}  // namespace ishare
