#include <gtest/gtest.h>

#include "ishare/plan/explain.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

SubplanGraph MakeGraph(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr r0 = PlanNode::MakeProject(agg, {{Col("total"), "t"}},
                                         QuerySet::Single(0));
  PlanNodePtr r1 = PlanNode::MakeAggregate(agg, {},
                                           {MaxAgg(Col("total"), "m")},
                                           QuerySet::Single(1));
  return SubplanGraph::Build(
      {QueryPlan{0, "a", r0}, QueryPlan{1, "b", r1}});
}

TEST(ExplainTest, DotContainsClustersAndEdges) {
  TestDb db;
  SubplanGraph g = MakeGraph(db.catalog);
  std::string dot = ToDot(g, {4, 2, 1});
  EXPECT_NE(dot.find("digraph shared_plan"), std::string::npos);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_2"), std::string::npos);
  EXPECT_NE(dot.find("pace=4"), std::string::npos);
  EXPECT_NE(dot.find("Scan orders"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(ExplainTest, DotEscapesQuotes) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "strpred",
              b.ScanFiltered("customer", Eq(Col("c_region"), Lit("ASIA")))};
  SubplanGraph g = SubplanGraph::Build({q});
  std::string dot = ToDot(g);
  // The string literal 'ASIA' must not break the DOT label quoting.
  EXPECT_EQ(dot.find("\"ASIA\""), std::string::npos);
}

TEST(ExplainTest, SummaryListsEverySubplan) {
  TestDb db;
  SubplanGraph g = MakeGraph(db.catalog);
  std::string s = ExplainSummary(g, {4, 2, 1});
  EXPECT_NE(s.find("#0"), std::string::npos);
  EXPECT_NE(s.find("#2"), std::string::npos);
  EXPECT_NE(s.find("pace=4"), std::string::npos);
  EXPECT_NE(s.find("roots="), std::string::npos);
}

TEST(ExplainTest, SummaryWithoutPaces) {
  TestDb db;
  SubplanGraph g = MakeGraph(db.catalog);
  std::string s = ExplainSummary(g);
  EXPECT_EQ(s.find("pace="), std::string::npos);
  EXPECT_NE(s.find("ops="), std::string::npos);
}

}  // namespace
}  // namespace ishare
