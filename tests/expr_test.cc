#include <gtest/gtest.h>

#include "ishare/expr/expr.h"

namespace ishare {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kFloat64},
                 {"name", DataType::kString}});
}

Row TestRow(int64_t id, double price, const char* name) {
  return Row{Value(id), Value(price), Value(std::string(name))};
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, CompareString) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value("3"), Value(int64_t{3}));
}

TEST(ExprTest, ColumnAndLiteral) {
  Schema s = TestSchema();
  auto e = CompiledExpr::Compile(Col("price"), s);
  EXPECT_EQ(e.Eval(TestRow(1, 9.5, "a")).AsDouble(), 9.5);

  auto lit = CompiledExpr::Compile(Lit(7), s);
  EXPECT_EQ(lit.Eval(TestRow(1, 0, "a")).AsInt(), 7);
}

TEST(ExprTest, Arithmetic) {
  Schema s = TestSchema();
  auto e = CompiledExpr::Compile(Mul(Col("price"), Lit(2.0)), s);
  EXPECT_DOUBLE_EQ(e.Eval(TestRow(1, 3.5, "a")).AsDouble(), 7.0);

  auto f = CompiledExpr::Compile(Add(Col("id"), Lit(10)), s);
  EXPECT_EQ(f.Eval(TestRow(5, 0, "a")).AsInt(), 15);

  auto d = CompiledExpr::Compile(Div(Lit(1), Lit(4)), s);
  EXPECT_DOUBLE_EQ(d.Eval(TestRow(0, 0, "a")).AsDouble(), 0.25);
}

TEST(ExprTest, DivisionByZeroYieldsZero) {
  Schema s = TestSchema();
  auto d = CompiledExpr::Compile(Div(Lit(1), Lit(0)), s);
  EXPECT_DOUBLE_EQ(d.Eval(TestRow(0, 0, "a")).AsDouble(), 0.0);
}

TEST(ExprTest, Comparisons) {
  Schema s = TestSchema();
  Row r = TestRow(5, 2.5, "mid");
  EXPECT_TRUE(CompiledExpr::Compile(Gt(Col("id"), Lit(4)), s).EvalBool(r));
  EXPECT_FALSE(CompiledExpr::Compile(Gt(Col("id"), Lit(5)), s).EvalBool(r));
  EXPECT_TRUE(CompiledExpr::Compile(Ge(Col("id"), Lit(5)), s).EvalBool(r));
  EXPECT_TRUE(CompiledExpr::Compile(Eq(Col("name"), Lit("mid")), s).EvalBool(r));
  EXPECT_TRUE(CompiledExpr::Compile(Ne(Col("name"), Lit("x")), s).EvalBool(r));
  EXPECT_TRUE(
      CompiledExpr::Compile(Between(Col("price"), Lit(2.0), Lit(3.0)), s)
          .EvalBool(r));
}

TEST(ExprTest, LogicShortCircuits) {
  Schema s = TestSchema();
  Row r = TestRow(1, 1.0, "a");
  // The right operand would CHECK-fail (string < int); AND must not reach it
  // because the left operand is false.
  auto e = CompiledExpr::Compile(
      And(Gt(Col("id"), Lit(100)), Lt(Col("name"), Lit(3))), s);
  EXPECT_FALSE(e.EvalBool(r));
}

TEST(ExprTest, InList) {
  Schema s = TestSchema();
  auto e = CompiledExpr::Compile(
      Expr::In(Col("name"), {Value("a"), Value("b")}), s);
  EXPECT_TRUE(e.EvalBool(TestRow(1, 0, "a")));
  EXPECT_FALSE(e.EvalBool(TestRow(1, 0, "c")));
}

TEST(ExprTest, NotNegates) {
  Schema s = TestSchema();
  auto e = CompiledExpr::Compile(Not(Eq(Col("id"), Lit(1))), s);
  EXPECT_FALSE(e.EvalBool(TestRow(1, 0, "a")));
  EXPECT_TRUE(e.EvalBool(TestRow(2, 0, "a")));
}

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("PROMO BRASS", "%BRASS"));
  EXPECT_TRUE(LikeMatch("greenish metal", "%green%"));
  EXPECT_FALSE(LikeMatch("blue metal", "%green%"));
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("special requests", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = Gt(Col("id"), Lit(4));
  ExprPtr b = Gt(Col("id"), Lit(4));
  ExprPtr c = Gt(Col("id"), Lit(5));
  EXPECT_TRUE(Expr::Equals(a, b));
  EXPECT_FALSE(Expr::Equals(a, c));
  EXPECT_EQ(Expr::Hash(a), Expr::Hash(b));
  EXPECT_NE(Expr::Hash(a), Expr::Hash(c));
}

TEST(ExprTest, OutputTypes) {
  Schema s = TestSchema();
  EXPECT_EQ(Col("id")->OutputType(s), DataType::kInt64);
  EXPECT_EQ(Add(Col("id"), Lit(1))->OutputType(s), DataType::kInt64);
  EXPECT_EQ(Add(Col("id"), Col("price"))->OutputType(s), DataType::kFloat64);
  EXPECT_EQ(Div(Col("id"), Lit(2))->OutputType(s), DataType::kFloat64);
  EXPECT_EQ(Eq(Col("id"), Lit(2))->OutputType(s), DataType::kInt64);
}

TEST(ExprTest, CollectColumns) {
  std::vector<std::string> cols;
  And(Gt(Col("id"), Lit(1)), Lt(Col("price"), Col("id")))->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"id", "price"}));
}

TEST(ExprTest, ToStringRendersSql) {
  EXPECT_EQ(Gt(Col("id"), Lit(4))->ToString(), "(id > 4)");
  EXPECT_EQ(Expr::Like(Col("name"), "%x%")->ToString(), "name LIKE '%x%'");
}

}  // namespace
}  // namespace ishare
