// Flow-control suite (DESIGN.md §9):
//  - MemoryBudget arbiter units (registration, absolute publishing, peaks,
//    track-only mode, headroom grants, peak resets),
//  - the pure shedding policy (ShedOrder ranking, ShedQuota ramp and its
//    prefix property),
//  - the retry/backpressure boundary: kResourceExhausted never burns the
//    storage-fault retry budget,
//  - adaptive drop accounting: arrived == admitted + dropped, protective
//    subplans are never dropped from,
//  - the defer-only property: across 100+ seeded fault-plan x budget
//    combinations, a bounded run with drops disabled produces bit-exact
//    results versus an unbounded run — deferral moves work, never answers.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ishare/exec/adaptive_executor.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/flow/shedding.h"
#include "ishare/recovery/retry.h"
#include "ishare/storage/perturbed_source.h"
#include "test_util.h"

namespace ishare {
namespace {

// ---------------------------------------------------------------------------
// MemoryBudget arbiter
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, TracksComponentsUsedAndPeaks) {
  flow::MemoryBudget mb(1000);
  int a = mb.Register("buf:subplan_0");
  int b = mb.Register("state:subplan_0");
  EXPECT_EQ(mb.num_components(), 2);
  EXPECT_EQ(mb.component_name(a), "buf:subplan_0");
  EXPECT_EQ(mb.used(), 0);

  mb.Set(a, 300);
  mb.Set(b, 200);
  EXPECT_EQ(mb.used(), 500);
  EXPECT_EQ(mb.peak(), 500);

  // Publishing is absolute: shrinking a component lowers used() but the
  // peaks stay at their high-water marks.
  mb.Set(a, 100);
  EXPECT_EQ(mb.used(), 300);
  EXPECT_EQ(mb.peak(), 500);
  EXPECT_EQ(mb.component_bytes(a), 100);
  EXPECT_EQ(mb.component_peak(a), 300);

  mb.Add(b, 50);
  EXPECT_EQ(mb.component_bytes(b), 250);
  EXPECT_EQ(mb.used(), 350);
  EXPECT_FALSE(mb.OverBudget());
  EXPECT_NEAR(mb.Pressure(), 0.35, 1e-12);

  mb.Set(a, 900);
  EXPECT_TRUE(mb.OverBudget());
  EXPECT_GT(mb.Pressure(), 1.0);
}

TEST(MemoryBudgetTest, TrackOnlyModeIsNeverOverBudget) {
  // Budget <= 0 is how baseline passes measure their working set: full
  // accounting, no pressure, every headroom grant succeeds.
  flow::MemoryBudget mb(0);
  int a = mb.Register("buf:subplan_0");
  mb.Set(a, int64_t{1} << 40);
  EXPECT_FALSE(mb.limited());
  EXPECT_FALSE(mb.OverBudget());
  EXPECT_EQ(mb.Pressure(), 0.0);
  EXPECT_TRUE(mb.GrantHeadroom(int64_t{1} << 50).ok());
  EXPECT_EQ(mb.peak(), int64_t{1} << 40);
}

TEST(MemoryBudgetTest, GrantHeadroomIsAdvisoryBackpressure) {
  flow::MemoryBudget mb(100);
  int a = mb.Register("x");
  mb.Set(a, 60);
  EXPECT_TRUE(mb.GrantHeadroom(40).ok());  // exactly fits
  Status denied = mb.GrantHeadroom(41);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(denied.IsRetryableBackpressure());
  EXPECT_FALSE(denied.IsTransient());
  // A denial changes nothing: the grant is advisory, not a reservation.
  EXPECT_EQ(mb.used(), 60);
  EXPECT_TRUE(mb.GrantHeadroom(40).ok());
}

TEST(MemoryBudgetTest, ResetPeaksDropsToCurrentUsage) {
  flow::MemoryBudget mb(0);
  int a = mb.Register("x");
  mb.Set(a, 500);
  mb.Set(a, 100);
  EXPECT_EQ(mb.peak(), 500);
  mb.ResetPeaks();
  EXPECT_EQ(mb.peak(), 100);
  EXPECT_EQ(mb.component_peak(a), 100);
}

TEST(FlowStatsTest, ShedTotalToleratesShortVectors) {
  flow::FlowStats fs;
  fs.query_deferred = {3};
  fs.query_dropped = {1, 7};
  EXPECT_EQ(fs.shed_total(0), 4);
  EXPECT_EQ(fs.shed_total(1), 7);  // deferred vector too short -> 0
  EXPECT_EQ(fs.shed_total(9), 0);  // both too short
}

// ---------------------------------------------------------------------------
// Shedding policy (pure functions)
// ---------------------------------------------------------------------------

TEST(ShedPolicyTest, OrderIsDescendingSlackTiesByAscendingId) {
  std::vector<double> slack = {0.2, 0.9, 0.9, 0.0, 0.5};
  std::vector<bool> sheddable = {true, true, true, false, true};
  std::vector<int> order = flow::ShedOrder(slack, sheddable);
  // Protective subplan 3 never appears; equal slacks keep id order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 0}));

  // Nothing sheddable -> empty order.
  EXPECT_TRUE(
      flow::ShedOrder({0.5, 0.5}, {false, false}).empty());
}

TEST(ShedPolicyTest, QuotaRampsLinearlyFromStartToFull) {
  const double start = 0.7;
  const int n = 10;
  EXPECT_EQ(flow::ShedQuota(0.0, start, n), 0);
  EXPECT_EQ(flow::ShedQuota(0.69, start, n), 0);
  EXPECT_EQ(flow::ShedQuota(1.0, start, n), n);
  EXPECT_EQ(flow::ShedQuota(2.5, start, n), n);   // pressure may exceed 1
  EXPECT_EQ(flow::ShedQuota(0.85, start, n), 5);  // halfway up the ramp
  EXPECT_EQ(flow::ShedQuota(0.5, start, 0), 0);   // nothing to shed

  // Degenerate start degrades to all-or-nothing at pressure >= 1.
  for (double s : {0.0, -0.5, 1.0, 1.5}) {
    EXPECT_EQ(flow::ShedQuota(0.99, s, n), 0) << s;
    EXPECT_EQ(flow::ShedQuota(1.0, s, n), n) << s;
  }
}

TEST(ShedPolicyTest, QuotaIsMonotoneInPressure) {
  // The prefix property the overload bench gates on: rising pressure can
  // only extend the shed set, never swap a slacker subplan out for a
  // less-slack one. Monotone quota + fixed descending order implies it.
  const double start = 0.7;
  for (int n : {1, 3, 7, 16}) {
    int prev = 0;
    for (int i = 0; i <= 200; ++i) {
      int q = flow::ShedQuota(i / 100.0, start, n);
      EXPECT_GE(q, prev) << "pressure " << i / 100.0 << " n " << n;
      EXPECT_LE(q, n);
      prev = q;
    }
  }
}

// ---------------------------------------------------------------------------
// Retry/backpressure boundary
// ---------------------------------------------------------------------------

TEST(RetryBoundaryTest, BackpressureNeverBurnsTheRetryBudget) {
  recovery::RetryPolicy policy;
  int calls = 0;
  int attempts = 0;
  double backoff = 0;
  Status st = recovery::RetryTransient(
      policy,
      [&] {
        ++calls;
        return Status::ResourceExhausted("buffer over high watermark");
      },
      &attempts, &backoff);
  // kResourceExhausted is backpressure, not a transient storage fault:
  // it propagates on the first attempt with zero virtual backoff, and the
  // flow layer turns it into a deferral instead.
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(backoff, 0.0);

  // Contrast: kUnavailable exhausts the whole attempt budget.
  calls = 0;
  st = recovery::RetryTransient(
      policy,
      [&] {
        ++calls;
        return Status::Unavailable("partition handoff");
      },
      &attempts, &backoff);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, policy.max_attempts);
  EXPECT_GT(backoff, 0.0);
}

// ---------------------------------------------------------------------------
// Adaptive shedding: accounting and the defer-only bit-exactness property
// ---------------------------------------------------------------------------

// Integer-only single-table workload so bounded-vs-unbounded comparisons
// can demand bit equality (no float accumulation order effects). Two
// queries with separate roots: q0 gets a tiny constraint (zero slack,
// protective), q1 a huge one (full slack, first to shed).
struct ShedDb {
  ShedDb() {
    Schema s({{"id", DataType::kInt64}, {"cat", DataType::kInt64}});
    CHECK(catalog.AddTable("t", s, TableStats()).ok());
    for (int64_t i = 0; i < 90; ++i) {
      rows.push_back({Value(i), Value(i % 7)});
    }
    PlanBuilder b0(&catalog, 0);
    queries.push_back({0, "tight",
                       b0.Aggregate(b0.ScanFiltered("t", nullptr), {"cat"},
                                    {CountAgg("n")})});
    PlanBuilder b1(&catalog, 1);
    queries.push_back({1, "slack",
                       b1.Aggregate(b1.ScanFiltered("t", nullptr), {},
                                    {CountAgg("n")})});
    graph = SubplanGraph::Build(queries);
  }

  Catalog catalog;
  std::vector<Row> rows;
  std::vector<QueryPlan> queries;
  SubplanGraph graph;
  Schema schema() const { return catalog.GetSchema("t"); }
};

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

::testing::AssertionResult ExactlyEqual(const ResultMap& a,
                                        const ResultMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [row, mult] : a) {
    auto it = b.find(row);
    if (it == b.end()) {
      return ::testing::AssertionFailure()
             << "missing row " << RowToString(row);
    }
    if (it->second != mult) {
      return ::testing::AssertionFailure()
             << "multiplicity differs for " << RowToString(row) << ": "
             << mult << " vs " << it->second;
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(AdaptiveShedding, DropAccountingBalancesAndSparesProtective) {
  ShedDb db;
  CostEstimator est(&db.graph, &db.catalog);

  // A 1-byte budget keeps pressure far above the drop target at every
  // step, so the drop pass fires continuously on the sheddable side.
  flow::MemoryBudget budget(1);
  ExecOptions opts;
  opts.flow.budget = &budget;
  AdaptivePolicy policy;
  policy.enable_shed_drop = true;

  StreamSource src;
  src.AddTable("t", db.schema(), db.rows);
  AdaptiveExecutor exec(&est, &src, {1e-6, 1e18}, policy, opts);
  auto r = exec.Run(PaceConfig(db.graph.num_subplans(), 5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Drops happened and every one is accounted per event and per query.
  EXPECT_GT(r->flow.dropped_tuples, 0);
  int64_t logged = 0;
  for (const ShedDropEvent& e : r->drop_log) {
    logged += e.tuples;
    EXPECT_FALSE(exec.subplan_protective(e.subplan)) << e.subplan;
    EXPECT_GT(e.tuples, 0);
  }
  EXPECT_EQ(logged, r->flow.dropped_tuples);

  // The accounting identity: every leaf tuple the engine took
  // responsibility for was either processed or discarded with a record.
  EXPECT_EQ(exec.ConsumedInput(),
            r->flow.admitted_tuples + r->flow.dropped_tuples);

  // The zero-slack query is protective: nothing of its input was dropped,
  // and its result still exactly matches a clean batch run.
  ASSERT_EQ(r->flow.query_dropped.size(), 2u);
  EXPECT_EQ(r->flow.query_dropped[0], 0);
  EXPECT_GT(r->flow.query_dropped[1], 0);

  StreamSource clean;
  clean.AddTable("t", db.schema(), db.rows);
  PaceExecutor batch(&db.graph, &clean);
  ASSERT_TRUE(batch.Run(PaceConfig(db.graph.num_subplans(), 1)).ok());
  EXPECT_TRUE(ExactlyEqual(MaterializeResult(*exec.query_output(0), 0),
                           MaterializeResult(*batch.query_output(0), 0)));
}

TEST(AdaptiveShedding, DeferOnlyBoundedRunsAreBitExact) {
  // The property satellite: 36 fault-plan seeds x 3 budgets = 108 seeded
  // burst/budget combinations. With drops disabled, a bounded run may
  // defer and backpressure as much as it likes — the trigger execution
  // covers all remaining input, so materialized results must be
  // bit-identical to the unbounded run's. Budgets span "absurdly tight"
  // (every step sheds everything sheddable) through "tight" to "roomy".
  ShedDb db;
  CostEstimator est(&db.graph, &db.catalog);
  const std::vector<int64_t> budgets = {1, 2048, int64_t{1} << 20};

  for (uint64_t seed = 1; seed <= 36; ++seed) {
    FaultPlan plan = FaultPlan::Random(seed, 3, {"t"});
    ASSERT_TRUE(plan.Validate().ok()) << plan.ToString();

    // Unbounded reference for this fault plan.
    PerturbedStreamSource ref_src(plan);
    ref_src.AddTable("t", db.schema(), db.rows);
    AdaptiveExecutor ref(&est, &ref_src, {1e-6, 1e18});
    ASSERT_TRUE(ref.Run(PaceConfig(db.graph.num_subplans(), 6)).ok())
        << plan.ToString();
    ResultMap ref0 = MaterializeResult(*ref.query_output(0), 0);
    ResultMap ref1 = MaterializeResult(*ref.query_output(1), 1);

    for (int64_t budget_bytes : budgets) {
      flow::MemoryBudget budget(budget_bytes);
      ExecOptions opts;
      opts.flow.budget = &budget;
      opts.flow.buffer_soft_limit_bytes = budget_bytes / 2;
      AdaptivePolicy policy;
      policy.enable_shed_defer = true;
      policy.enable_shed_drop = false;  // defer-only: answers are sacred

      PerturbedStreamSource src(plan);  // same seed -> identical stream
      src.AddTable("t", db.schema(), db.rows);
      AdaptiveExecutor exec(&est, &src, {1e-6, 1e18}, policy, opts);
      auto r = exec.Run(PaceConfig(db.graph.num_subplans(), 6));
      ASSERT_TRUE(r.ok()) << r.status().ToString() << " budget "
                          << budget_bytes << " " << plan.ToString();
      EXPECT_EQ(r->flow.dropped_tuples, 0);
      EXPECT_TRUE(r->drop_log.empty());
      EXPECT_EQ(exec.ConsumedInput(), r->flow.admitted_tuples);

      EXPECT_TRUE(ExactlyEqual(MaterializeResult(*exec.query_output(0), 0),
                               ref0))
          << "q0 seed " << seed << " budget " << budget_bytes;
      EXPECT_TRUE(ExactlyEqual(MaterializeResult(*exec.query_output(1), 1),
                               ref1))
          << "q1 seed " << seed << " budget " << budget_bytes;
    }
  }
}

}  // namespace
}  // namespace ishare
