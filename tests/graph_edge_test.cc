// Edge cases for subplan-graph construction and the approach-specific
// graph shapes: blocking-operator cuts (NoShare-Nonuniform), within-query
// DAGs (Q17/Q15-style self-sharing), validation failure paths, and the
// executor's rational schedule when paces share event points.

#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/plan/builder.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

TEST(ExtraCutTest, BlockingOperatorsBecomeSubplanRoots) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  // agg -> filter -> agg chain: cutting at aggregates yields 2 subplans.
  PlanNodePtr inner = b.Aggregate(b.ScanFiltered("orders", nullptr),
                                  {"o_custkey"},
                                  {SumAgg(Col("o_amount"), "t")});
  PlanNodePtr root = b.Aggregate(b.Filter(inner, Gt(Col("t"), Lit(100.0))),
                                 {}, {CountAgg("n")});
  QueryPlan q{0, "chain", root};

  SubplanGraph plain = SubplanGraph::Build({q});
  EXPECT_EQ(plain.num_subplans(), 1);

  SubplanGraph cut = SubplanGraph::Build({q}, [](const PlanNode& n) {
    return n.kind == PlanKind::kAggregate;
  });
  EXPECT_EQ(cut.num_subplans(), 2);
  EXPECT_TRUE(cut.Validate().ok());
  // The child subplan's root is the inner aggregate.
  int child = cut.subplan(cut.query_root(0)).children[0];
  EXPECT_EQ(cut.subplan(child).root->kind, PlanKind::kAggregate);
}

TEST(ExtraCutTest, CutGraphExecutesEquivalently) {
  TestDb db(250, 8);
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr inner = b.Aggregate(b.ScanFiltered("orders", nullptr),
                                  {"o_custkey"},
                                  {SumAgg(Col("o_amount"), "t")});
  QueryPlan q{0, "chain",
              b.Aggregate(b.Filter(inner, Gt(Col("t"), Lit(100.0))), {},
                          {CountAgg("n")})};
  auto run = [&](const SubplanGraph& g, const PaceConfig& p) {
    db.source.Reset();
    PaceExecutor exec(&g, &db.source);
    exec.Run(p).value();
    return MaterializeResult(*exec.query_output(0), 0);
  };
  SubplanGraph plain = SubplanGraph::Build({q});
  SubplanGraph cut = SubplanGraph::Build({q}, [](const PlanNode& n) {
    return n.kind == PlanKind::kAggregate;
  });
  auto ref = run(plain, PaceConfig(plain.num_subplans(), 1));
  EXPECT_EQ(run(cut, {1, 1}), ref);
  EXPECT_EQ(run(cut, {1, 8}), ref);  // lazy parent over eager child
}

TEST(WithinQueryDagTest, SelfSharedScanBecomesSharedSubplan) {
  // Q17-style: the same lineitem scan feeds the main join and the per-part
  // average subquery — a DAG inside one query.
  TpchDb db(TpchScale{0.002, 5});
  QueryPlan q = TpchQuery(db.catalog, 17, 0);
  MqoOptimizer mqo(&db.catalog);
  std::vector<QueryPlan> merged = mqo.Merge({q});
  SubplanGraph g = SubplanGraph::Build(merged);
  EXPECT_TRUE(g.Validate().ok());
  // Q17's two uses of lineitem come from the same parent subplan, so the
  // sharing shows up as two SubplanInput references (two buffer consumers),
  // not as two distinct parents.
  int buffer_refs = 0;
  for (int i = 0; i < g.num_subplans(); ++i) {
    std::vector<PlanNodePtr> nodes;
    CollectNodes(g.subplan(i).root, &nodes);
    for (const auto& n : nodes) {
      if (n->kind == PlanKind::kSubplanInput) ++buffer_refs;
    }
  }
  EXPECT_GE(buffer_refs, 2)
      << "Q17's two uses of lineitem should consume one shared buffer";
  EXPECT_GT(g.num_subplans(), 1);
}

TEST(ValidateTest, RejectsForeignLeafQueries) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "x",
              b.Aggregate(b.ScanFiltered("orders", nullptr), {"o_custkey"},
                          {CountAgg("n")})};
  SubplanGraph g = SubplanGraph::Build({q});
  ASSERT_TRUE(g.Validate().ok());
  // Corrupt an interior node's query set.
  g.mutable_subplan(0)->root->children[0]->queries = QuerySet::FromIds({0, 1});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(ValidateTest, RejectsParentNotSubsumed) {
  TestDb db;
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(db.catalog, "orders", both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      scan, {"o_custkey"}, {SumAgg(Col("o_amount"), "t")}, both);
  PlanNodePtr r0 =
      PlanNode::MakeProject(agg, {{Col("t"), "t"}}, QuerySet::Single(0));
  PlanNodePtr r1 = PlanNode::MakeAggregate(agg, {}, {CountAgg("n")},
                                           QuerySet::Single(1));
  SubplanGraph g = SubplanGraph::Build(
      {QueryPlan{0, "a", r0}, QueryPlan{1, "b", r1}});
  ASSERT_TRUE(g.Validate().ok());
  // Shrink the shared child's query set below a parent's.
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) {
      std::vector<PlanNodePtr> nodes;
      CollectNodes(g.mutable_subplan(i)->root, &nodes);
      for (auto& n : nodes) n->queries = QuerySet::Single(0);
      g.RecomputeEdges();
    }
  }
  EXPECT_FALSE(g.Validate().ok());
}

TEST(ScheduleTest, OverlappingPacePointsExecuteOncePerSubplan) {
  // Paces 2 and 4 share the points 1/2 and 1: the pace-2 subplan must not
  // run twice at shared points.
  TestDb db(100, 5);
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(db.catalog, "orders", both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      scan, {"o_custkey"}, {SumAgg(Col("o_amount"), "t")}, both);
  PlanNodePtr r0 =
      PlanNode::MakeProject(agg, {{Col("t"), "t"}}, QuerySet::Single(0));
  PlanNodePtr r1 = PlanNode::MakeAggregate(agg, {}, {CountAgg("n")},
                                           QuerySet::Single(1));
  SubplanGraph g = SubplanGraph::Build(
      {QueryPlan{0, "a", r0}, QueryPlan{1, "b", r1}});
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) shared = i;
  }
  PaceConfig paces(g.num_subplans(), 2);
  paces[shared] = 4;
  db.source.Reset();
  PaceExecutor exec(&g, &db.source);
  RunResult r = exec.Run(paces).value();
  EXPECT_EQ(r.subplans[shared].work_per_exec.size(), 4u);
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (i == shared) continue;
    EXPECT_EQ(r.subplans[i].work_per_exec.size(), 2u);
  }
}

TEST(ScheduleTest, CoprimePacesInterleave) {
  TestDb db(120, 5);
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "x",
              b.Aggregate(b.ScanFiltered("orders", nullptr), {"o_custkey"},
                          {SumAgg(Col("o_amount"), "t")})};
  SubplanGraph g = SubplanGraph::Build({q});
  db.source.Reset();
  PaceExecutor exec(&g, &db.source);
  RunResult r = exec.Run({7}).value();
  ASSERT_EQ(r.subplans[0].exec_fraction.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(r.subplans[0].exec_fraction[i], (i + 1) / 7.0, 1e-12);
  }
}

TEST(MqoDagTest, UnsharePassReachesFixpoint) {
  // With absurd materialization costs the DAG must fully unshare except
  // scans, even through nested shared nodes (project over filter).
  TestDb db;
  auto mk = [&](QueryId qid) {
    PlanBuilder b(&db.catalog, qid);
    AggSpec agg =
        qid == 0 ? SumAgg(Col("amt"), "t") : AvgAgg(Col("amt"), "t");
    return QueryPlan{
        qid, "q",
        b.Aggregate(
            b.Project(b.Filter(b.Project(b.ScanFiltered("orders", nullptr),
                                         {{Col("o_custkey"), "o_custkey"},
                                          {Col("o_amount"), "o_amount"}}),
                               Gt(Col("o_amount"), Lit(1.0))),
                      {{Col("o_custkey"), "ck"}, {Col("o_amount"), "amt"}}),
            {"ck"}, {agg})};
  };
  MqoOptions opts;
  opts.materialization_cost_per_tuple = 1000.0;
  MqoOptimizer mqo(&db.catalog, opts);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({mk(0), mk(1)}));
  ASSERT_TRUE(g.Validate().ok());
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() > 1) {
      EXPECT_EQ(g.subplan(i).root->kind, PlanKind::kScan);
    }
  }
}

TEST(CloneRestrictedTest, PreservesSchemasAndStructure) {
  TpchDb db(TpchScale{0.002, 5});
  QueryPlan q5 = TpchQuery(db.catalog, 5, 0);
  QueryPlan q5v = TpchQuery(db.catalog, 5, 1, /*variant=*/true);
  MqoOptimizer mqo(&db.catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({q5, q5v}));
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() < 2) continue;
    PlanNodePtr clone =
        PlanNode::CloneRestricted(g.subplan(i).root, QuerySet::Single(0));
    EXPECT_EQ(clone->output_schema, g.subplan(i).root->output_schema);
    EXPECT_EQ(CountOperators(clone), CountOperators(g.subplan(i).root));
  }
}

}  // namespace
}  // namespace ishare
