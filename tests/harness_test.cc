#include <gtest/gtest.h>

#include "ishare/harness/experiment.h"
#include "ishare/harness/report.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

TpchDb* Db() {
  static TpchDb* db = new TpchDb(TpchScale{0.003, 11});
  return db;
}

std::vector<QueryPlan> SmallWorkload() {
  // A compact sharing-friendly trio.
  return {TpchQuery(Db()->catalog, 5, 0), TpchQuery(Db()->catalog, 7, 1),
          TpchQuery(Db()->catalog, 3, 2)};
}

TEST(ExperimentTest, BatchLatenciesPositiveAndCached) {
  Experiment ex(&Db()->catalog, &Db()->source, SmallWorkload(),
                {1.0, 1.0, 1.0});
  const std::vector<double>& lat = ex.BatchLatencies();
  ASSERT_EQ(lat.size(), 3u);
  for (double l : lat) EXPECT_GT(l, 0);
  EXPECT_EQ(&ex.BatchLatencies(), &lat);  // cached
}

TEST(ExperimentTest, RunProducesPerQueryMetrics) {
  ApproachOptions opts;
  opts.max_pace = 10;
  Experiment ex(&Db()->catalog, &Db()->source, SmallWorkload(),
                {1.0, 0.5, 0.2}, opts);
  ExperimentResult r = ex.Run(Approach::kIShare);
  EXPECT_GT(r.total_work, 0);
  EXPECT_GT(r.total_seconds, 0);
  ASSERT_EQ(r.queries.size(), 3u);
  for (const QueryMetrics& q : r.queries) {
    EXPECT_GT(q.batch_latency, 0);
    EXPECT_NEAR(q.latency_goal,
                q.batch_latency * (q.name == "Q5"   ? 1.0
                                   : q.name == "Q7" ? 0.5
                                                    : 0.2),
                1e-12);
    EXPECT_GT(q.batch_final_work, 0);
    EXPECT_NEAR(q.final_work_goal,
                q.batch_final_work * (q.name == "Q5"   ? 1.0
                                      : q.name == "Q7" ? 0.5
                                                       : 0.2),
                1e-9);
    EXPECT_GE(q.missed_abs, 0);
  }
}

TEST(ExperimentTest, MissedLatencyAggregates) {
  ExperimentResult r;
  r.queries.resize(2);
  r.queries[0].missed_abs = 1.0;
  r.queries[0].missed_rel = 0.5;
  r.queries[1].missed_abs = 3.0;
  r.queries[1].missed_rel = 0.1;
  EXPECT_DOUBLE_EQ(r.MeanMissedAbs(), 2.0);
  EXPECT_DOUBLE_EQ(r.MaxMissedAbs(), 3.0);
  EXPECT_DOUBLE_EQ(r.MeanMissedRel(), 30.0);
  EXPECT_DOUBLE_EQ(r.MaxMissedRel(), 50.0);
}

TEST(ExperimentTest, SharedBatchCheaperThanStandaloneOnSharedWork) {
  // Fig. 10's premise: with loose constraints, batch-shared execution does
  // less total work than separate batch runs.
  Experiment ex(&Db()->catalog, &Db()->source, SmallWorkload(),
                {1.0, 1.0, 1.0});
  double standalone = ex.StandaloneBatchTotalSeconds();
  double shared = ex.SharedBatchTotalSeconds();
  EXPECT_GT(standalone, 0);
  EXPECT_GT(shared, 0);
  // Not asserting strict inequality (timing noise at tiny scale), but the
  // shared run must not blow up.
  EXPECT_LT(shared, standalone * 2.0);
}

TEST(ExperimentTest, CalibratedConstraintsReduceMisses) {
  // Calibration aims the optimizer at measured batch work, so measured
  // missed latencies should not get worse (usually better).
  ApproachOptions opts;
  opts.max_pace = 12;
  std::vector<QueryPlan> queries = SmallWorkload();
  std::vector<double> rel = {0.2, 0.2, 0.2};
  Experiment plain(&Db()->catalog, &Db()->source, queries, rel, opts);
  Experiment calib(&Db()->catalog, &Db()->source, queries, rel, opts,
                   /*calibrate_constraints=*/true);
  ExperimentResult a = plain.Run(Approach::kIShareNoUnshare);
  ExperimentResult b = calib.Run(Approach::kIShareNoUnshare);
  EXPECT_LE(b.MeanMissedRel(), a.MeanMissedRel() + 15.0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a   bbbb"), std::string::npos);
  EXPECT_NE(s.find("xx  y"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
}

TEST(TextTableTest, NumNormalizesNegativeZero) {
  // Tiny negatives (timer jitter around zero) must not render as "-0.00".
  EXPECT_EQ(TextTable::Num(-0.004, 2), "0.00");
  EXPECT_EQ(TextTable::Num(-0.0, 2), "0.00");
  EXPECT_EQ(TextTable::Num(-1e-12, 4), "0.0000");
  EXPECT_EQ(TextTable::Num(-0.4, 0), "0");
  // Real negatives keep their sign.
  EXPECT_EQ(TextTable::Num(-0.006, 2), "-0.01");
  EXPECT_EQ(TextTable::Num(-1.5, 2), "-1.50");
}

}  // namespace
}  // namespace ishare
