// Tests for harness/json_export.h: golden-file schema stability, a real
// experiment export round-trip through the obs JSON parser, and runtime
// on/off parity of deterministic experiment results.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "ishare/harness/json_export.h"
#include "ishare/workload/tpch_queries.h"

#ifndef ISHARE_GOLDEN_DIR
#define ISHARE_GOLDEN_DIR "."
#endif

namespace ishare {
namespace {

TpchDb* Db() {
  static TpchDb* db = new TpchDb(TpchScale{0.004, 29});
  return db;
}

// Hand-crafted snapshots: the golden file pins the exact serialization of
// every schema element (key order, double formatting, null for non-finite,
// histogram blocks, spans).
std::string GoldenDocument() {
  BenchRunInfo info;
  info.bench = "golden_bench";
  info.sf = 0.01;
  info.max_pace = 50;
  info.seed = 7;
  info.threads = 4;
  info.quick = false;

  ExperimentResult r;
  r.approach = Approach::kIShare;
  r.total_work = 1234.5;
  r.total_seconds = 0.25;
  r.optimization_seconds = 0.125;
  r.est_total_work = 1200.0;
  r.decompose_stats.splits_considered = 3;
  r.decompose_stats.splits_adopted = 1;
  r.decompose_stats.partial_splits_adopted = 0;
  r.decompose_stats.partitions_evaluated = 42;
  r.adaptation.rederivations = 2;
  r.adaptation.skipped_execs = 5;
  r.adaptation.catchup_execs = 1;
  r.adaptation.drift_ratio = 1.25;
  r.adaptation.rederive_seconds = 0.0625;
  QueryMetrics q1;
  q1.name = "q05";
  q1.final_work = 100.0;
  q1.batch_final_work = 400.0;
  q1.final_work_goal = 80.0;
  q1.latency_seconds = 0.03125;
  q1.batch_latency = 0.125;
  q1.latency_goal = 0.025;
  q1.missed_abs = 0.00390625;
  q1.missed_rel = 0.25;
  q1.deadline_met = false;
  QueryMetrics q2;
  q2.name = "q08";
  q2.final_work = 50.0;
  q2.batch_final_work = 200.0;
  q2.final_work_goal = 100.0;
  q2.latency_seconds = 0.015625;
  q2.batch_latency = 0.0625;
  q2.latency_goal = 0.03125;
  q2.missed_abs = 0.0;
  q2.missed_rel = 0.0;
  q2.deadline_met = true;
  r.queries = {q1, q2};

  obs::MetricsSnapshot metrics;
  metrics.counters["exec.subplan.executions"] = 96.0;
  metrics.counters["exec.subplan.work#subplan_0"] = 512.0;
  metrics.counters["exec.path.columnar_batches"] = 64.0;
  metrics.counters["exec.path.columnar_tuples"] = 4096.0;
  metrics.counters["exec.path.row_batches"] = 32.0;
  metrics.counters["exec.path.row_tuples"] = 768.0;
  metrics.gauges["cost.memo.hit_rate"] = 0.9375;
  obs::HistogramSnapshot h;
  h.bounds = {0.001, 0.002, 0.004};
  h.counts = {3, 1, 0, 1};
  h.count = 5;
  h.dropped = 1;
  h.sum = 0.0085;
  h.p50 = 0.00075;
  h.p95 = 0.0035;
  h.p99 = 0.004;
  metrics.histograms["harness.query.latency_seconds#q05"] = h;

  std::map<std::string, obs::SpanStats> spans;
  obs::SpanStats s;
  s.count = 12;
  s.total_seconds = 0.375;
  s.min_seconds = 0.015625;
  s.max_seconds = 0.0625;
  spans["opt.pace_search.run"] = s;

  return BenchReportJson(info, {r}, metrics, spans);
}

TEST(JsonExportGoldenTest, MatchesGoldenFile) {
  std::string actual = GoldenDocument();
  ASSERT_FALSE(actual.empty());

  std::string path = std::string(ISHARE_GOLDEN_DIR) + "/experiment_export.json";
  // Intentional schema changes re-pin the golden file (and bump
  // schema_version) with:
  //   ISHARE_REGEN_GOLDEN=1 ./build/tests/json_export_test \
  //     --gtest_filter='JsonExportGoldenTest.MatchesGoldenFile'
  if (const char* regen = std::getenv("ISHARE_REGEN_GOLDEN");
      regen != nullptr && *regen != '\0') {
    ASSERT_TRUE(WriteBenchJson(path, actual).ok());
    GTEST_SKIP() << "re-pinned golden file " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "\nactual document:\n"
                         << actual;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  // The checked-in file ends with a newline; the document does not.
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r')) {
    expected.pop_back();
  }
  EXPECT_EQ(actual, expected)
      << "export schema drifted; if intentional, update " << path
      << " and bump schema_version";
}

TEST(JsonExportGoldenTest, GoldenDocumentParsesBack) {
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(GoldenDocument(), &v, &err)) << err;
  ASSERT_EQ(v.kind, obs::JsonValue::Kind::kObject);
  // Top-level key order is part of the schema contract.
  ASSERT_GE(v.obj.size(), 12u);
  EXPECT_EQ(v.obj[0].first, "schema_version");
  EXPECT_EQ(v.obj[1].first, "generator");
  EXPECT_EQ(v.obj[2].first, "bench");
  EXPECT_EQ(v.obj[3].first, "config");
  EXPECT_EQ(v.obj[4].first, "results");
  EXPECT_EQ(v.obj[5].first, "recovery");
  EXPECT_EQ(v.obj[6].first, "flow");
  EXPECT_EQ(v.obj[7].first, "sched");
  EXPECT_EQ(v.obj[8].first, "exec");
  EXPECT_EQ(v.obj[9].first, "chaos");
  EXPECT_EQ(v.obj[10].first, "metrics");
  EXPECT_EQ(v.obj[11].first, "spans");
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->num, 6.0);
  EXPECT_DOUBLE_EQ(v.Find("config")->Find("threads")->num, 4.0);

  // The recovery rollup is present (all zeros here: the hand-crafted
  // snapshot has no recovery.* counters) with a stable key set. v5 added
  // the two checkpoint-health keys at the end.
  const obs::JsonValue* rec = v.Find("recovery");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->obj.size(), 11u);
  EXPECT_EQ(rec->obj[0].first, "checkpoints");
  EXPECT_EQ(rec->obj[8].first, "retry_backoff_seconds");
  EXPECT_EQ(rec->obj[9].first, "consecutive_failures");
  EXPECT_EQ(rec->obj[10].first, "last_commit_epoch");
  EXPECT_DOUBLE_EQ(rec->Find("checkpoints")->num, 0.0);

  // v3: the flow overload-control rollup, same always-present contract.
  const obs::JsonValue* flow = v.Find("flow");
  ASSERT_NE(flow, nullptr);
  ASSERT_EQ(flow->obj.size(), 8u);
  EXPECT_EQ(flow->obj[0].first, "budget_bytes");
  EXPECT_EQ(flow->obj[1].first, "used_bytes");
  EXPECT_EQ(flow->obj[2].first, "peak_bytes");
  EXPECT_EQ(flow->obj[3].first, "trims");
  EXPECT_EQ(flow->obj[4].first, "trimmed_tuples");
  EXPECT_EQ(flow->obj[5].first, "shed_deferred_execs");
  EXPECT_EQ(flow->obj[6].first, "shed_dropped_tuples");
  EXPECT_EQ(flow->obj[7].first, "backpressure_events");
  EXPECT_DOUBLE_EQ(flow->Find("budget_bytes")->num, 0.0);

  // v4: the parallel-scheduler rollup, same always-present contract
  // (zeros here: the hand-crafted snapshot has no sched.* counters).
  const obs::JsonValue* sched = v.Find("sched");
  ASSERT_NE(sched, nullptr);
  ASSERT_EQ(sched->obj.size(), 4u);
  EXPECT_EQ(sched->obj[0].first, "pool_tasks");
  EXPECT_EQ(sched->obj[1].first, "pool_steals");
  EXPECT_EQ(sched->obj[2].first, "parallel_fors");
  EXPECT_EQ(sched->obj[3].first, "step_waves");
  EXPECT_DOUBLE_EQ(sched->Find("pool_tasks")->num, 0.0);

  // v6: the execution-path rollup, populated here (the hand-crafted
  // snapshot carries exec.path.* counters) to pin the counter plumbing,
  // not just the key set.
  const obs::JsonValue* exec = v.Find("exec");
  ASSERT_NE(exec, nullptr);
  ASSERT_EQ(exec->obj.size(), 4u);
  EXPECT_EQ(exec->obj[0].first, "columnar_batches");
  EXPECT_EQ(exec->obj[1].first, "columnar_tuples");
  EXPECT_EQ(exec->obj[2].first, "row_batches");
  EXPECT_EQ(exec->obj[3].first, "row_tuples");
  EXPECT_DOUBLE_EQ(exec->Find("columnar_batches")->num, 64.0);
  EXPECT_DOUBLE_EQ(exec->Find("columnar_tuples")->num, 4096.0);
  EXPECT_DOUBLE_EQ(exec->Find("row_batches")->num, 32.0);
  EXPECT_DOUBLE_EQ(exec->Find("row_tuples")->num, 768.0);

  // v5: the chaos/supervision rollup, same always-present contract
  // (zeros here: the hand-crafted snapshot has no chaos.* metrics).
  const obs::JsonValue* chaos = v.Find("chaos");
  ASSERT_NE(chaos, nullptr);
  ASSERT_EQ(chaos->obj.size(), 10u);
  EXPECT_EQ(chaos->obj[0].first, "service_level");
  EXPECT_EQ(chaos->obj[1].first, "ladder_transitions");
  EXPECT_EQ(chaos->obj[2].first, "breaker_trips");
  EXPECT_EQ(chaos->obj[3].first, "breaker_half_opens");
  EXPECT_EQ(chaos->obj[4].first, "breaker_closes");
  EXPECT_EQ(chaos->obj[5].first, "faults_injected");
  EXPECT_EQ(chaos->obj[6].first, "checkpoints_skipped");
  EXPECT_EQ(chaos->obj[7].first, "checkpoints_stretched");
  EXPECT_EQ(chaos->obj[8].first, "defer_signals");
  EXPECT_EQ(chaos->obj[9].first, "safe_stops");
  EXPECT_DOUBLE_EQ(chaos->Find("service_level")->num, 0.0);
  EXPECT_DOUBLE_EQ(chaos->Find("breaker_trips")->num, 0.0);
}

TEST(JsonExportTest, RealExperimentExportRoundTrips) {
  obs::SetEnabled(true);
  obs::Registry().Reset();
  obs::GlobalTracer().Reset();

  TpchDb* db = Db();
  std::vector<QueryPlan> queries = {TpchQuery(db->catalog, 5, 0),
                                    TpchQuery(db->catalog, 8, 1)};
  std::vector<double> rel(queries.size(), 0.2);
  ApproachOptions opts;
  opts.max_pace = 8;
  Experiment ex(&db->catalog, &db->source, queries, rel, opts);
  std::vector<ExperimentResult> results = {ex.Run(Approach::kIShare)};

  BenchRunInfo info;
  info.bench = "json_export_test";
  std::string doc = BenchReportJson(info, results);
  ASSERT_FALSE(doc.empty());

  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(doc, &v, &err)) << err;

  const obs::JsonValue* res = v.Find("results");
  ASSERT_NE(res, nullptr);
  ASSERT_EQ(res->arr.size(), 1u);
  EXPECT_EQ(res->arr[0].Find("approach")->str, "iShare");
  EXPECT_EQ(res->arr[0].Find("queries")->arr.size(), 2u);

  const obs::JsonValue* metrics = v.Find("metrics");
  ASSERT_NE(metrics, nullptr);
#if ISHARE_OBS_ENABLED
  // Per-query latency histograms with percentiles.
  const obs::JsonValue* histos = metrics->Find("histograms");
  ASSERT_NE(histos, nullptr);
  const obs::JsonValue* qh = histos->Find("harness.query.latency_seconds#Q5");
  ASSERT_NE(qh, nullptr) << doc.substr(0, 400);
  EXPECT_GE(qh->Find("count")->num, 1.0);
  EXPECT_GE(qh->Find("p99")->num, qh->Find("p50")->num);
  // Per-subplan work counters.
  const obs::JsonValue* counters = metrics->Find("counters");
  bool has_subplan_work = false;
  for (const auto& [k, val] : counters->obj) {
    if (k.rfind("exec.subplan.work#", 0) == 0 && val.num > 0) {
      has_subplan_work = true;
    }
  }
  EXPECT_TRUE(has_subplan_work);
  EXPECT_GT(counters->Find("opt.pace_search.iterations")->num, 0.0);
  EXPECT_GT(counters->Find("cost.memo.hit")->num, 0.0);
  // Optimizer trace spans.
  const obs::JsonValue* spans = v.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->Find("opt.pace_search.run"), nullptr);
  EXPECT_GT(spans->Find("opt.pace_search.run")->Find("count")->num, 0.0);
  ASSERT_NE(spans->Find("exec.subplan.exec"), nullptr);
#endif
}

TEST(JsonExportTest, RuntimeOnOffProducesIdenticalResults) {
  TpchDb* db = Db();
  std::vector<QueryPlan> queries = {TpchQuery(db->catalog, 5, 0),
                                    TpchQuery(db->catalog, 8, 1)};
  std::vector<double> rel(queries.size(), 0.2);
  ApproachOptions opts;
  opts.max_pace = 8;

  obs::SetEnabled(true);
  Experiment ex_on(&db->catalog, &db->source, queries, rel, opts);
  ExperimentResult on = ex_on.Run(Approach::kIShare);

  obs::SetEnabled(false);
  Experiment ex_off(&db->catalog, &db->source, queries, rel, opts);
  ExperimentResult off = ex_off.Run(Approach::kIShare);
  obs::SetEnabled(true);

  // Instrumentation must not perturb any deterministic outcome (wall-clock
  // fields excluded by construction).
  EXPECT_DOUBLE_EQ(on.total_work, off.total_work);
  EXPECT_DOUBLE_EQ(on.est_total_work, off.est_total_work);
  ASSERT_EQ(on.queries.size(), off.queries.size());
  for (size_t i = 0; i < on.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(on.queries[i].final_work, off.queries[i].final_work)
        << on.queries[i].name;
    EXPECT_EQ(on.queries[i].deadline_met, off.queries[i].deadline_met);
  }
}

TEST(JsonExportTest, WriteBenchJsonWritesFile) {
  std::string path = ::testing::TempDir() + "/ishare_export_test.json";
  Status st = WriteBenchJson(path, "{\"a\":1}");
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "{\"a\":1}\n");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteBenchJson("/nonexistent-dir/x.json", "{}").ok());
}

}  // namespace
}  // namespace ishare
