#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/plan/builder.h"
#include "ishare/plan/subplan_graph.h"
#include "test_util.h"

namespace ishare {
namespace {

MqoOptions NoMatOptions() {
  MqoOptions o;
  o.account_materialization = false;
  return o;
}

TEST(MqoTest, MergesIdenticalScans) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a", b0.Aggregate(b0.ScanFiltered("orders", nullptr),
                                    {"o_custkey"},
                                    {SumAgg(Col("o_amount"), "t")})};
  QueryPlan q1{1, "b", b1.Aggregate(b1.ScanFiltered("orders", nullptr),
                                    {"o_custkey"},
                                    {SumAgg(Col("o_amount"), "t")})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  // Fully identical queries merge into a single root node.
  EXPECT_EQ(merged[0].root.get(), merged[1].root.get());
  EXPECT_EQ(merged[0].root->queries, QuerySet::FromIds({0, 1}));
}

TEST(MqoTest, DifferingSelectsShareWithMarkingPredicates) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a",
               b0.Aggregate(
                   b0.ScanFiltered("orders", Gt(Col("o_amount"), Lit(50.0))),
                   {"o_custkey"}, {SumAgg(Col("o_amount"), "t")})};
  QueryPlan q1{1, "b",
               b1.Aggregate(
                   b1.ScanFiltered("orders", Lt(Col("o_amount"), Lit(20.0))),
                   {"o_custkey"}, {SumAgg(Col("o_amount"), "t")})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  EXPECT_EQ(merged[0].root.get(), merged[1].root.get());
  // The shared filter carries both queries' predicates.
  const PlanNodePtr& filt = merged[0].root->children[0];
  ASSERT_EQ(filt->kind, PlanKind::kFilter);
  EXPECT_EQ(filt->predicates.size(), 2u);
}

TEST(MqoTest, IdenticalPredicatesShareOneObject) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a",
               b0.Aggregate(
                   b0.ScanFiltered("orders", Gt(Col("o_amount"), Lit(50.0))),
                   {"o_custkey"}, {SumAgg(Col("o_amount"), "t")})};
  QueryPlan q1{1, "b",
               b1.Aggregate(
                   b1.ScanFiltered("orders", Gt(Col("o_amount"), Lit(50.0))),
                   {"o_custkey"}, {SumAgg(Col("o_amount"), "t")})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  const PlanNodePtr& filt = merged[0].root->children[0];
  ASSERT_EQ(filt->kind, PlanKind::kFilter);
  ASSERT_EQ(filt->predicates.size(), 2u);
  EXPECT_EQ(filt->predicates.at(0).get(), filt->predicates.at(1).get());
}

TEST(MqoTest, ProjectUnionWidensSchema) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a",
               b0.Project(b0.ScanFiltered("orders", nullptr),
                          {{Col("o_custkey"), "o_custkey"}})};
  QueryPlan q1{1, "b",
               b1.Project(b1.ScanFiltered("orders", nullptr),
                          {{Col("o_amount"), "o_amount"}})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  EXPECT_EQ(merged[0].root.get(), merged[1].root.get());
  EXPECT_EQ(merged[0].root->projections.size(), 2u);
  EXPECT_EQ(merged[0].root->output_schema.num_fields(), 2);
}

TEST(MqoTest, ConflictingAliasesDoNotMerge) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a",
               b0.Project(b0.ScanFiltered("orders", nullptr),
                          {{Col("o_custkey"), "v"}})};
  QueryPlan q1{1, "b",
               b1.Project(b1.ScanFiltered("orders", nullptr),
                          {{Col("o_amount"), "v"}})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  EXPECT_NE(merged[0].root.get(), merged[1].root.get());
  // But the scan+filter below still merges.
  EXPECT_EQ(merged[0].root->children[0].get(),
            merged[1].root->children[0].get());
}

TEST(MqoTest, DifferentAggregatesDoNotMerge) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  QueryPlan q0{0, "a", b0.Aggregate(b0.ScanFiltered("orders", nullptr),
                                    {"o_custkey"},
                                    {SumAgg(Col("o_amount"), "t")})};
  QueryPlan q1{1, "b", b1.Aggregate(b1.ScanFiltered("orders", nullptr),
                                    {"o_custkey"},
                                    {MaxAgg(Col("o_amount"), "t")})};
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({q0, q1});
  EXPECT_NE(merged[0].root.get(), merged[1].root.get());
  EXPECT_EQ(merged[0].root->children[0].get(),
            merged[1].root->children[0].get());
}

TEST(MqoTest, JoinsMergeWhenKeysMatch) {
  TestDb db;
  auto mk = [&](QueryId qid, double threshold) {
    PlanBuilder b(&db.catalog, qid);
    return QueryPlan{
        qid, "q",
        b.Join(b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(threshold))),
               b.ScanFiltered("customer", nullptr), {"o_custkey"},
               {"c_custkey"})};
  };
  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  std::vector<QueryPlan> merged = mqo.Merge({mk(0, 10.0), mk(1, 90.0)});
  EXPECT_EQ(merged[0].root.get(), merged[1].root.get());
  SubplanGraph g = SubplanGraph::Build(merged);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(MqoTest, MergedPlanExecutesCorrectlyForBothQueries) {
  TestDb db(200, 10);
  auto mk = [&](QueryId qid, double threshold) {
    PlanBuilder b(&db.catalog, qid);
    return QueryPlan{
        qid, "q",
        b.Aggregate(
            b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(threshold))),
            {"o_custkey"}, {SumAgg(Col("o_amount"), "t")})};
  };
  std::vector<QueryPlan> queries = {mk(0, 30.0), mk(1, 70.0)};

  // Reference: run each query separately in one batch.
  std::vector<std::unordered_map<Row, int64_t, RowHasher>> ref;
  for (const QueryPlan& q : queries) {
    db.source.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &db.source);
    exec.Run({1}).value();
    ref.push_back(MaterializeResult(*exec.query_output(q.id), q.id));
  }

  MqoOptimizer mqo(&db.catalog, NoMatOptions());
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(queries));
  db.source.Reset();
  PaceExecutor exec(&g, &db.source);
  exec.Run(PaceConfig(g.num_subplans(), 4)).value();
  for (QueryId q = 0; q < 2; ++q) {
    EXPECT_EQ(MaterializeResult(*exec.query_output(q), q), ref[q])
        << "query " << q;
  }
}

TEST(MqoTest, MaterializationCostCanRejectSharing) {
  TestDb db;
  // A shared bottom whose output is large relative to the work it saves:
  // a pass-through projection of the scan. The aggregates above differ so
  // the projection genuinely has two parents after merging.
  auto mk = [&](QueryId qid) {
    PlanBuilder b(&db.catalog, qid);
    AggSpec agg = qid == 0 ? SumAgg(Col("o_amount"), "t")
                           : MaxAgg(Col("o_amount"), "t");
    return QueryPlan{
        qid, "q",
        b.Aggregate(b.Project(b.ScanFiltered("orders", nullptr),
                              {{Col("o_custkey"), "o_custkey"},
                               {Col("o_amount"), "o_amount"}}),
                    {"o_custkey"}, {agg})};
  };
  MqoOptions expensive_mat;
  expensive_mat.account_materialization = true;
  expensive_mat.materialization_cost_per_tuple = 100.0;
  MqoOptimizer mqo(&db.catalog, expensive_mat);
  std::vector<QueryPlan> merged = mqo.Merge({mk(0), mk(1)});
  // With absurdly expensive materialization, nothing multi-parent remains
  // except scans (which are exempt as base buffers).
  SubplanGraph g = SubplanGraph::Build(merged);
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() > 1) {
      EXPECT_EQ(g.subplan(i).root->kind, PlanKind::kScan);
    }
  }
}

}  // namespace
}  // namespace ishare
