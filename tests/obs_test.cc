// Unit tests for ishare::obs — metric primitives, tracer, runtime enable
// switch, and the hand-rolled JSON writer/parser.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ishare/obs/json.h"
#include "ishare/obs/obs.h"

namespace ishare {
namespace obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry().Reset();
    GlobalTracer().Reset();
  }
  void TearDown() override {
    SetEnabled(true);
    Registry().Reset();
    GlobalTracer().Reset();
  }
};

TEST_F(ObsTest, CounterAddsAndSnapshots) {
  Counter& c = Registry().GetCounter("test.counter.adds");
  c.Add();
  c.Add(2.5);
#if ISHARE_OBS_ENABLED
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
#else
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
#endif
  EXPECT_EQ(&c, &Registry().GetCounter("test.counter.adds"));
  MetricsSnapshot snap = Registry().Snapshot();
  ASSERT_TRUE(snap.counters.count("test.counter.adds"));
#if ISHARE_OBS_ENABLED
  EXPECT_DOUBLE_EQ(snap.counters["test.counter.adds"], 3.5);
#endif
}

TEST_F(ObsTest, RuntimeDisableStopsMutations) {
  Counter& c = Registry().GetCounter("test.counter.disabled");
  Gauge& g = Registry().GetGauge("test.gauge.disabled");
  Histogram& h = Registry().GetHistogram("test.histo.disabled");
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  c.Add(10);
  g.Set(4.0);
  h.Observe(0.5);
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0);
  SetEnabled(true);
  c.Add(1);
#if ISHARE_OBS_ENABLED
  EXPECT_DOUBLE_EQ(c.Value(), 1.0);
#endif
}

TEST_F(ObsTest, CounterIsThreadSafeAndExact) {
  Counter& c = Registry().GetCounter("test.counter.mt");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
#if ISHARE_OBS_ENABLED
  EXPECT_DOUBLE_EQ(c.Value(), kThreads * kAdds);
#else
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
#endif
}

#if ISHARE_OBS_ENABLED

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  // Bounds 1, 2, 4, 8: four finite buckets + overflow.
  Histogram h(Histogram::ExpBounds(1.0, 2.0, 4));
  for (int i = 0; i < 100; ++i) h.Observe(0.5);  // all in bucket [0, 1]
  EXPECT_EQ(h.Count(), 100);
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  h.Observe(100.0);  // overflow bucket
  EXPECT_EQ(h.Count(), 101);
  EXPECT_GE(h.Quantile(1.0), 8.0);
}

TEST_F(ObsTest, HistogramDropsNonFinite) {
  Histogram h(Histogram::ExpBounds(1.0, 2.0, 4));
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(1.5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Dropped(), 2);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.5);
}

TEST_F(ObsTest, HistogramNegativeClampsToZeroBucket) {
  Histogram h(Histogram::ExpBounds(1.0, 2.0, 4));
  h.Observe(-3.0);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.bucket_count(0), 1);
}

TEST_F(ObsTest, RegistryHistogramBoundsFixedByFirstRegistration) {
  Histogram& a =
      Registry().GetHistogram("test.histo.bounds", Histogram::ExpBounds(1, 2, 3));
  Histogram& b =
      Registry().GetHistogram("test.histo.bounds", Histogram::ExpBounds(5, 3, 7));
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 3u);
}

TEST_F(ObsTest, TracerAggregatesByName) {
  GlobalTracer().Record("test.span.a", 0.5);
  GlobalTracer().Record("test.span.a", 1.5);
  GlobalTracer().Record("test.span.b", 0.25);
  auto snap = GlobalTracer().Snapshot();
  ASSERT_TRUE(snap.count("test.span.a"));
  EXPECT_EQ(snap["test.span.a"].count, 2);
  EXPECT_DOUBLE_EQ(snap["test.span.a"].total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(snap["test.span.a"].min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(snap["test.span.a"].max_seconds, 1.5);
  EXPECT_EQ(snap["test.span.b"].count, 1);
}

TEST_F(ObsTest, ScopedSpanRecordsOnDestruction) {
  { ScopedSpan span("test.span.scoped"); }
  auto snap = GlobalTracer().Snapshot();
  ASSERT_TRUE(snap.count("test.span.scoped"));
  EXPECT_EQ(snap["test.span.scoped"].count, 1);
  EXPECT_GE(snap["test.span.scoped"].total_seconds, 0.0);
}

TEST_F(ObsTest, SpanParentPropagatesAcrossThreads) {
  // The worker pool captures the submitter's CurrentSpanName() and
  // re-establishes it on the worker via ScopedSpanParent, so a span
  // opened inside a stolen task still records the parent->child edge.
  {
    ScopedSpan outer("test.span.submitter");
    std::thread worker([parent = CurrentSpanName()] {
      EXPECT_STREQ(CurrentSpanName(), "");  // fresh thread, no context
      ScopedSpanParent adopt(parent);
      ScopedSpan inner("test.span.worker");
    });
    worker.join();
  }
  auto edges = GlobalTracer().SnapshotEdges();
  auto it = edges.find({"test.span.submitter", "test.span.worker"});
  ASSERT_NE(it, edges.end());
  EXPECT_EQ(it->second, 1);
}

TEST_F(ObsTest, SnapshotComputesHistogramPercentiles) {
  Histogram& h = Registry().GetHistogram("test.histo.pct");
  for (int i = 0; i < 1000; ++i) h.Observe(1e-4);
  MetricsSnapshot snap = Registry().Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("test.histo.pct");
  EXPECT_EQ(hs.count, 1000);
  EXPECT_GT(hs.p50, 0.0);
  EXPECT_LE(hs.p50, hs.p95);
  EXPECT_LE(hs.p95, hs.p99);
}

#endif  // ISHARE_OBS_ENABLED

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.Number(1.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.Key("c");
  w.String("x");
  w.EndObject();
  ASSERT_TRUE(w.ok()) << w.error();
  EXPECT_EQ(w.Take(), R"({"a":1,"b":[1.5,true,null],"c":"x"})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k");
  w.String("a\"b\\c\nd\te\x01"
           "f");
  w.EndObject();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.Take(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriterTest, RejectsNonFiniteNumbers) {
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    JsonWriter w;
    w.BeginObject();
    w.Key("x");
    w.Number(bad);
    w.EndObject();
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.Take(), "");
  }
}

TEST(JsonWriterTest, RejectsStructuralMisuse) {
  {
    JsonWriter w;  // Key outside object
    w.BeginArray();
    w.Key("x");
    EXPECT_FALSE(w.ok());
  }
  {
    JsonWriter w;  // unclosed object
    w.BeginObject();
    EXPECT_EQ(w.Take(), "");
  }
  {
    JsonWriter w;  // value without key inside object
    w.BeginObject();
    w.Int(1);
    EXPECT_FALSE(w.ok());
  }
}

TEST(JsonWriterTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 1e-9, 123456.789, 0.1}) {
    std::string s = JsonWriter::FormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonParserTest, ParsesWriterOutputRoundTrip) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nums");
  w.BeginArray();
  w.Number(1.5);
  w.Int(-3);
  w.EndArray();
  w.Key("s");
  w.String("hi\nthere");
  w.Key("flag");
  w.Bool(false);
  w.Key("nothing");
  w.Null();
  w.EndObject();
  ASSERT_TRUE(w.ok());
  std::string doc = w.Take();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson(doc, &v, &err)) << err;
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  // Key order is preserved.
  ASSERT_EQ(v.obj.size(), 4u);
  EXPECT_EQ(v.obj[0].first, "nums");
  EXPECT_EQ(v.obj[1].first, "s");
  EXPECT_EQ(v.obj[2].first, "flag");
  EXPECT_EQ(v.obj[3].first, "nothing");
  const JsonValue* nums = v.Find("nums");
  ASSERT_NE(nums, nullptr);
  ASSERT_EQ(nums->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(nums->arr[0].num, 1.5);
  EXPECT_DOUBLE_EQ(nums->arr[1].num, -3.0);
  EXPECT_EQ(v.Find("s")->str, "hi\nthere");
  EXPECT_FALSE(v.Find("flag")->b);
  EXPECT_EQ(v.Find("nothing")->kind, JsonValue::Kind::kNull);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson("{", &v, &err));
  EXPECT_FALSE(ParseJson("{\"a\":1,}", &v, &err));
  EXPECT_FALSE(ParseJson("[1] trailing", &v, &err));
  EXPECT_FALSE(ParseJson("NaN", &v, &err));
  EXPECT_FALSE(ParseJson("", &v, &err));
}

TEST(JsonParserTest, ParsesUnicodeEscapes) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("\"a\\u00e9b\"", &v, &err)) << err;
  EXPECT_EQ(v.str, "a\xc3\xa9" "b");
}

}  // namespace
}  // namespace obs
}  // namespace ishare
