#include <gtest/gtest.h>

#include "ishare/opt/approaches.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

// --- Incrementability math (Eq. 1-2) on synthetic costs ---

PlanCost MakeCost(double total, std::vector<double> finals) {
  PlanCost c;
  c.total_work = total;
  c.query_final_work = std::move(finals);
  return c;
}

TEST(IncrementabilityTest, BenefitCountsOnlyMissedWork) {
  std::vector<double> L = {50, 50};
  PlanCost lazy = MakeCost(100, {100, 40});   // q1 already meets L
  PlanCost eager = MakeCost(150, {70, 20});
  // q0: 100 - max(50,70) = 30; q1: max(0, 40 - max(50,20)) = 0.
  EXPECT_DOUBLE_EQ(PaceBenefit(eager, lazy, L), 30);
}

TEST(IncrementabilityTest, BenefitBoundedByConstraint) {
  std::vector<double> L = {50};
  PlanCost lazy = MakeCost(100, {100});
  PlanCost eager = MakeCost(150, {10});  // overshoots the constraint
  // Reduction below L yields no extra benefit: 100 - max(50,10) = 50.
  EXPECT_DOUBLE_EQ(PaceBenefit(eager, lazy, L), 50);
}

TEST(IncrementabilityTest, RatioAndInfinity) {
  std::vector<double> L = {0};
  PlanCost lazy = MakeCost(100, {80});
  PlanCost eager = MakeCost(140, {40});
  EXPECT_DOUBLE_EQ(Incrementability(eager, lazy, L), 1.0);
  PlanCost free_eager = MakeCost(100, {40});
  EXPECT_TRUE(std::isinf(Incrementability(free_eager, lazy, L)));
  PlanCost useless = MakeCost(100, {80});
  EXPECT_DOUBLE_EQ(Incrementability(useless, lazy, L), 0.0);
}

// --- Pace search on a real shared plan ---

std::vector<QueryPlan> SharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "k"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "m")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

class PaceSearchTest : public ::testing::Test {
 protected:
  PaceSearchTest() : db_(500, 10) {
    graph_ = SubplanGraph::Build(SharedDag(db_.catalog));
    est_ = std::make_unique<CostEstimator>(&graph_, &db_.catalog);
  }
  std::vector<double> Constraints(double rel) {
    PaceConfig ones(graph_.num_subplans(), 1);
    PlanCost batch = est_->Estimate(ones);
    return {rel * batch.query_final_work[0], rel * batch.query_final_work[1]};
  }
  TestDb db_;
  SubplanGraph graph_;
  std::unique_ptr<CostEstimator> est_;
};

TEST_F(PaceSearchTest, LooseConstraintStaysLazy) {
  PaceOptimizer po(est_.get(), Constraints(1.0));
  PaceSearchResult r = po.FindPaceConfiguration();
  for (int p : r.paces) EXPECT_EQ(p, 1);
}

TEST_F(PaceSearchTest, TightConstraintRaisesPaces) {
  std::vector<double> L = Constraints(0.2);
  PaceOptimizer po(est_.get(), L);
  PaceSearchResult r = po.FindPaceConfiguration();
  bool any_raised = false;
  for (int p : r.paces) any_raised |= (p > 1);
  EXPECT_TRUE(any_raised);
  for (int q = 0; q < 2; ++q) {
    EXPECT_LE(r.cost.query_final_work[q], L[q] * 1.0001) << "q" << q;
  }
}

TEST_F(PaceSearchTest, ParentNeverOutpacesChild) {
  PaceOptimizer po(est_.get(), Constraints(0.1));
  PaceSearchResult r = po.FindPaceConfiguration();
  for (int i = 0; i < graph_.num_subplans(); ++i) {
    for (int c : graph_.subplan(i).children) {
      EXPECT_LE(r.paces[i], r.paces[c]);
    }
  }
}

TEST_F(PaceSearchTest, TighterConstraintsCostMoreTotalWork) {
  PaceOptimizer loose(est_.get(), Constraints(0.5));
  PaceOptimizer tight(est_.get(), Constraints(0.1));
  double w_loose = loose.FindPaceConfiguration().cost.total_work;
  double w_tight = tight.FindPaceConfiguration().cost.total_work;
  EXPECT_GE(w_tight, w_loose);
}

TEST_F(PaceSearchTest, RefineDecreasingLowersWorkKeepingConstraints) {
  std::vector<double> L = Constraints(0.5);
  PaceOptimizer po(est_.get(), L);
  PaceConfig eager(graph_.num_subplans(), 16);
  PaceSearchResult r = po.RefineDecreasing(eager);
  PlanCost eager_cost = est_->Estimate(eager);
  EXPECT_LT(r.cost.total_work, eager_cost.total_work);
  for (int q = 0; q < 2; ++q) {
    EXPECT_LE(r.cost.query_final_work[q],
              std::max(L[q], eager_cost.query_final_work[q]) * 1.0001);
  }
}

// --- ApplySplit (Sec. 4.2) ---

TEST(ApplySplitTest, SplitsSharedSubplanAndRepairsParents) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) shared = i;
  }
  ASSERT_GE(shared, 0);

  PaceConfig old_paces(g.num_subplans(), 4);
  PaceConfig init;
  SubplanGraph ng = ApplySplit(
      g, shared, {QuerySet::Single(0), QuerySet::Single(1)}, old_paces, &init);
  ASSERT_TRUE(ng.Validate().ok()) << ng.ToString();
  // After the split the parents are single-query and get merged into their
  // part (Fig. 8): expect two fully separate single-query subplans.
  EXPECT_EQ(ng.num_subplans(), 2);
  for (int i = 0; i < ng.num_subplans(); ++i) {
    EXPECT_EQ(ng.subplan(i).queries.size(), 1);
    EXPECT_TRUE(ng.subplan(i).children.empty());
  }
  EXPECT_EQ(init.size(), ng.num_subplans() * 1u);
  for (int p : init) EXPECT_EQ(p, 4);  // inherited from the old subplans
}

TEST(ApplySplitTest, SplitPreservesQueryResults) {
  TestDb db(250, 8);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) shared = i;
  }
  PaceConfig init;
  SubplanGraph ng = ApplySplit(
      g, shared, {QuerySet::Single(0), QuerySet::Single(1)},
      PaceConfig(g.num_subplans(), 2), &init);

  auto run = [&](const SubplanGraph& graph, const PaceConfig& paces,
                 QueryId q) {
    db.source.Reset();
    PaceExecutor exec(&graph, &db.source);
    exec.Run(paces).value();
    return MaterializeResult(*exec.query_output(q), q);
  };
  for (QueryId q = 0; q < 2; ++q) {
    auto before = run(g, PaceConfig(g.num_subplans(), 2), q);
    auto after = run(ng, init, q);
    EXPECT_EQ(before, after) << "query " << q;
  }
}

// --- End-to-end approaches ---

std::vector<QueryPlan> TwoFilteredAggQueries(const Catalog& catalog) {
  auto mk = [&](QueryId qid, double threshold) {
    PlanBuilder b(&catalog, qid);
    return QueryPlan{
        qid, "q" + std::to_string(qid),
        b.Aggregate(
            b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(threshold))),
            {"o_custkey"}, {SumAgg(Col("o_amount"), "total")})};
  };
  return {mk(0, 5.0), mk(1, 95.0)};
}

TEST(ApproachesTest, AllApproachesProduceValidExecutablePlans) {
  TestDb db(300, 10);
  std::vector<QueryPlan> queries = TwoFilteredAggQueries(db.catalog);
  std::vector<double> rel = {1.0, 0.2};

  std::unordered_map<Row, int64_t, RowHasher> ref[2];
  for (const QueryPlan& q : queries) {
    db.source.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &db.source);
    exec.Run({1}).value();
    ref[q.id] = MaterializeResult(*exec.query_output(q.id), q.id);
  }

  for (Approach a :
       {Approach::kNoShareUniform, Approach::kNoShareNonuniform,
        Approach::kShareUniform, Approach::kIShareNoUnshare, Approach::kIShare,
        Approach::kIShareBruteForce}) {
    ApproachOptions opts;
    opts.max_pace = 20;
    OptimizedPlan plan = OptimizePlan(a, queries, db.catalog, rel, opts);
    ASSERT_TRUE(plan.graph.Validate().ok()) << ApproachName(a);
    db.source.Reset();
    PaceExecutor exec(&plan.graph, &db.source);
    exec.Run(plan.paces).value();
    for (QueryId q = 0; q < 2; ++q) {
      EXPECT_EQ(MaterializeResult(*exec.query_output(q), q), ref[q])
          << ApproachName(a) << " query " << q;
    }
  }
}

TEST(ApproachesTest, IShareNeverWorseThanShareUniformEstimate) {
  TestDb db(400, 10);
  std::vector<QueryPlan> queries = TwoFilteredAggQueries(db.catalog);
  std::vector<double> rel = {1.0, 0.1};
  ApproachOptions opts;
  opts.max_pace = 30;
  OptimizedPlan su =
      OptimizePlan(Approach::kShareUniform, queries, db.catalog, rel, opts);
  OptimizedPlan is =
      OptimizePlan(Approach::kIShare, queries, db.catalog, rel, opts);
  EXPECT_LE(is.est_cost.total_work, su.est_cost.total_work * 1.0001);
}

TEST(ApproachesTest, DecompositionHelpsDivergentConstraints) {
  TestDb db(600, 10);
  // Two near-identical queries; q0 very lazy, q1 very eager. Sharing forces
  // eagerness on everything; iShare should unshare (or at least match).
  std::vector<QueryPlan> queries = TwoFilteredAggQueries(db.catalog);
  std::vector<double> rel = {1.0, 0.05};
  ApproachOptions opts;
  opts.max_pace = 40;
  OptimizedPlan no_unshare = OptimizePlan(Approach::kIShareNoUnshare, queries,
                                          db.catalog, rel, opts);
  OptimizedPlan ishare =
      OptimizePlan(Approach::kIShare, queries, db.catalog, rel, opts);
  EXPECT_LE(ishare.est_cost.total_work,
            no_unshare.est_cost.total_work * 1.0001);
}

TEST(ApproachesTest, AbsoluteConstraintsScaleWithRelative) {
  TestDb db(300, 10);
  std::vector<QueryPlan> queries = TwoFilteredAggQueries(db.catalog);
  std::vector<double> abs1 = AbsoluteConstraints(queries, db.catalog, {1.0, 1.0});
  std::vector<double> abs2 = AbsoluteConstraints(queries, db.catalog, {0.5, 0.25});
  EXPECT_NEAR(abs2[0], abs1[0] * 0.5, 1e-9);
  EXPECT_NEAR(abs2[1], abs1[1] * 0.25, 1e-9);
}

TEST(ApproachesTest, MemoizationReducesOptimizationTime) {
  TestDb db(300, 10);
  // Queries that merge into a multi-subplan shared plan (shared aggregate
  // below, distinct roots above): memoization skips re-simulating the
  // shared subplan when only a root's pace changes.
  auto mk_agg = [&](PlanBuilder& b) {
    return b.Aggregate(b.ScanFiltered("orders", nullptr), {"o_custkey"},
                       {SumAgg(Col("o_amount"), "total")});
  };
  PlanBuilder b0(&db.catalog, 0), b1(&db.catalog, 1);
  std::vector<QueryPlan> queries = {
      QueryPlan{0, "q0",
                b0.Project(mk_agg(b0), {{Col("total"), "total"}})},
      QueryPlan{1, "q1",
                b1.Aggregate(mk_agg(b1), {}, {MaxAgg(Col("total"), "m")})}};
  std::vector<double> rel = {0.2, 0.2};
  ApproachOptions with;
  with.max_pace = 25;
  ApproachOptions without = with;
  without.memoized_estimator = false;
  OptimizedPlan a = OptimizePlan(Approach::kIShareNoUnshare, queries,
                                 db.catalog, rel, with);
  OptimizedPlan b = OptimizePlan(Approach::kIShareNoUnshare, queries,
                                 db.catalog, rel, without);
  // Identical plans and costs; only the work to find them differs.
  EXPECT_EQ(a.paces, b.paces);
  EXPECT_NEAR(a.est_cost.total_work, b.est_cost.total_work, 1e-6);
  EXPECT_GT(b.memo_misses, a.memo_misses);
}

}  // namespace
}  // namespace ishare
