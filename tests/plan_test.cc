#include <gtest/gtest.h>

#include "ishare/plan/builder.h"
#include "ishare/plan/subplan_graph.h"
#include "test_util.h"

namespace ishare {
namespace {

TEST(PlanBuilderTest, ScanSchemaFromCatalog) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr scan = b.Scan("orders");
  EXPECT_EQ(scan->kind, PlanKind::kScan);
  EXPECT_EQ(scan->output_schema.num_fields(), 3);
  EXPECT_EQ(scan->queries, QuerySet::Single(0));
}

TEST(PlanBuilderTest, FilterKeepsSchema) {
  TestDb db;
  PlanBuilder b(&db.catalog, 1);
  PlanNodePtr f = b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(10.0)));
  EXPECT_EQ(f->kind, PlanKind::kFilter);
  EXPECT_EQ(f->output_schema.num_fields(), 3);
  ASSERT_EQ(f->predicates.count(1), 1u);
}

TEST(PlanBuilderTest, ProjectSchemaFromAliases) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr p = b.Project(b.Scan("orders"),
                            {{Mul(Col("o_amount"), Lit(2.0)), "double_amt"},
                             {Col("o_custkey"), "o_custkey"}});
  EXPECT_EQ(p->output_schema.num_fields(), 2);
  EXPECT_EQ(p->output_schema.field(0).name, "double_amt");
  EXPECT_EQ(p->output_schema.field(0).type, DataType::kFloat64);
}

TEST(PlanBuilderTest, JoinSchemaConcat) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr j = b.Join(b.Scan("orders"), b.Scan("customer"), {"o_custkey"},
                         {"c_custkey"});
  EXPECT_EQ(j->output_schema.num_fields(), 5);
}

TEST(PlanBuilderTest, SemiJoinKeepsLeftSchema) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr j = b.Join(b.Scan("customer"), b.Scan("orders"), {"c_custkey"},
                         {"o_custkey"}, JoinType::kLeftSemi);
  EXPECT_EQ(j->output_schema.num_fields(), 2);
}

TEST(PlanBuilderTest, AggregateSchema) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr a = b.Aggregate(b.Scan("orders"), {"o_custkey"},
                              {SumAgg(Col("o_amount"), "total"),
                               CountAgg("cnt"),
                               AvgAgg(Col("o_amount"), "avg_amt")});
  EXPECT_EQ(a->output_schema.num_fields(), 4);
  EXPECT_EQ(a->output_schema.field(1).type, DataType::kFloat64);  // total
  EXPECT_EQ(a->output_schema.field(2).type, DataType::kInt64);    // cnt
  EXPECT_EQ(a->output_schema.field(3).type, DataType::kFloat64);  // avg
}

TEST(SignatureTest, StructSignatureIgnoresPredicates) {
  TestDb db;
  PlanBuilder b0(&db.catalog, 0);
  PlanBuilder b1(&db.catalog, 1);
  PlanNodePtr a = b0.ScanFiltered("orders", Gt(Col("o_amount"), Lit(10.0)));
  PlanNodePtr b = b1.ScanFiltered("orders", Lt(Col("o_amount"), Lit(5.0)));
  EXPECT_EQ(a->StructSignature(), b->StructSignature());
  EXPECT_NE(a->FullSignature(), b->FullSignature());
}

TEST(SignatureTest, DifferentAggregatesDoNotMatch) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr s1 = b.Aggregate(b.Scan("orders"), {"o_custkey"},
                               {SumAgg(Col("o_amount"), "x")});
  PlanNodePtr s2 = b.Aggregate(b.Scan("orders"), {"o_custkey"},
                               {MaxAgg(Col("o_amount"), "x")});
  EXPECT_NE(s1->StructSignature(), s2->StructSignature());
}

// Builds the paper's Fig. 2-style shared DAG:
//   shared  = Aggregate(Filter(Scan(orders)))           queries {0,1}
//   q0 root = Project(shared)                           queries {0}
//   q1 root = Aggregate(shared)                         queries {1}
std::vector<QueryPlan> MakeSharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));  // marking select for q1
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);

  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "o_custkey"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "max_total")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

TEST(SubplanGraphTest, CutsAtMultiParentNodes) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  ASSERT_EQ(g.num_subplans(), 3);
  ASSERT_TRUE(g.Validate().ok());

  // Identify the shared subplan: it has two parents.
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) shared = i;
  }
  ASSERT_GE(shared, 0);
  EXPECT_EQ(g.subplan(shared).queries, QuerySet::FromIds({0, 1}));
  EXPECT_TRUE(g.subplan(shared).IsSharedBuffer());

  int r0 = g.query_root(0);
  int r1 = g.query_root(1);
  EXPECT_NE(r0, r1);
  EXPECT_EQ(g.subplan(r0).queries, QuerySet::Single(0));
  EXPECT_EQ(g.subplan(r1).queries, QuerySet::Single(1));
  EXPECT_EQ(g.subplan(r0).children, std::vector<int>{shared});
  EXPECT_EQ(g.subplan(r1).children, std::vector<int>{shared});
}

TEST(SubplanGraphTest, SingleQueryIsOneSubplan) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr root = b.Aggregate(
      b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(1.0))), {"o_custkey"},
      {SumAgg(Col("o_amount"), "t")});
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "q", root}});
  EXPECT_EQ(g.num_subplans(), 1);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.query_root(0), 0);
  EXPECT_EQ(g.subplan(0).root_of, QuerySet::Single(0));
}

TEST(SubplanGraphTest, TopoOrders) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  std::vector<int> cf = g.TopoChildrenFirst();
  std::vector<int> pos(g.num_subplans());
  for (int i = 0; i < g.num_subplans(); ++i) pos[cf[i]] = i;
  for (int i = 0; i < g.num_subplans(); ++i) {
    for (int c : g.subplan(i).children) {
      EXPECT_LT(pos[c], pos[i]) << "child must precede parent";
    }
  }
}

TEST(SubplanGraphTest, SubplansOfQuery) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  EXPECT_EQ(g.SubplansOfQuery(0).size(), 2u);
  EXPECT_EQ(g.SubplansOfQuery(1).size(), 2u);
}

TEST(SubplanGraphTest, BuildCopiesNodes) {
  TestDb db;
  std::vector<QueryPlan> dag = MakeSharedDag(db.catalog);
  SubplanGraph g1 = SubplanGraph::Build(dag);
  SubplanGraph g2 = SubplanGraph::Build(dag);
  // Mutating g1's trees must not affect g2 (deep copies).
  g1.mutable_subplan(0)->root->table_name = "mutated";
  bool any_mutated = false;
  for (int i = 0; i < g2.num_subplans(); ++i) {
    std::vector<PlanNodePtr> nodes;
    CollectNodes(g2.subplan(i).root, &nodes);
    for (const auto& n : nodes) {
      if (n->table_name == "mutated") any_mutated = true;
    }
  }
  EXPECT_FALSE(any_mutated);
}

TEST(CloneRestrictedTest, DropsOtherQueriesPredicates) {
  TestDb db;
  std::vector<QueryPlan> dag = MakeSharedDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).parents.size() == 2) shared = i;
  }
  PlanNodePtr clone =
      PlanNode::CloneRestricted(g.subplan(shared).root, QuerySet::Single(0));
  std::vector<PlanNodePtr> nodes;
  CollectNodes(clone, &nodes);
  for (const auto& n : nodes) {
    EXPECT_EQ(n->queries, QuerySet::Single(0));
    if (n->kind == PlanKind::kFilter) {
      EXPECT_EQ(n->predicates.count(1), 0u);  // q1's marking select dropped
    }
  }
}

}  // namespace
}  // namespace ishare
