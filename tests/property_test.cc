// Property-style sweeps over the cost model and the executor:
//  - the estimator's total work is non-decreasing and its final work
//    non-increasing in the pace, for incrementable plans,
//  - estimated batch work tracks measured batch work within a calibration
//    band on every TPC-H query,
//  - runtime invariants hold across pace sweeps (weights net out, per-query
//    outputs are insert-only at the end, executions match the schedule).

#include <gtest/gtest.h>

#include "ishare/cost/estimator.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

TpchDb* Db() {
  static TpchDb* db = new TpchDb(TpchScale{0.004, 21});
  return db;
}

class PaceMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PaceMonotonicity, TotalWorkNonDecreasingFinalWorkNonIncreasing) {
  // An SPJ+aggregate plan (incrementable): work must be monotone in pace.
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0);
  SubplanGraph g = SubplanGraph::Build({q});
  CostEstimator est(&g, &Db()->catalog);
  double prev_total = -1;
  double prev_final = 1e300;
  for (int pace : {1, 2, 4, 8, 16, 32}) {
    PaceConfig p(g.num_subplans(), pace);
    PlanCost c = est.Estimate(p);
    EXPECT_GE(c.total_work, prev_total - 1e-6) << "pace " << pace;
    // Final work may plateau for non-incrementable parts but must not grow
    // significantly for these SPJ-style queries.
    EXPECT_LE(c.query_final_work[0], prev_final * 1.05) << "pace " << pace;
    prev_total = c.total_work;
    prev_final = c.query_final_work[0];
  }
}

// Q1 (scan+agg), Q3 (join), Q5 (multi-join), Q6 (scan only), Q10, Q12.
INSTANTIATE_TEST_SUITE_P(IncrementableQueries, PaceMonotonicity,
                         ::testing::Values(1, 3, 5, 6, 10, 12));

class EstimatorCalibration : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorCalibration, BatchEstimateWithinBandOfMeasurement) {
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0);
  double est = EstimateStandaloneBatchWork(q, Db()->catalog);

  Db()->Reset();
  SubplanGraph g = SubplanGraph::Build({q});
  PaceExecutor exec(&g, &Db()->source);
  RunResult r = exec.Run(PaceConfig(g.num_subplans(), 1)).value();
  double measured = r.query_final_work[0];

  EXPECT_GT(est, 0);
  EXPECT_GT(measured, 0);
  // Calibration band: within 5x either way. Catches gross cost-model
  // regressions while tolerating cardinality-estimation error (which the
  // paper likewise accepts, Sec. 3.2).
  EXPECT_LT(est, measured * 5.0) << q.name;
  EXPECT_GT(est, measured / 5.0) << q.name;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EstimatorCalibration,
                         ::testing::Range(1, 23));

class PaceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PaceSweep, RuntimeInvariants) {
  int pace = GetParam();
  QueryPlan q = TpchQuery(Db()->catalog, 5, 0);
  SubplanGraph g = SubplanGraph::Build({q});
  Db()->Reset();
  PaceExecutor exec(&g, &Db()->source);
  RunResult r = exec.Run(PaceConfig(g.num_subplans(), pace)).value();

  for (int s = 0; s < g.num_subplans(); ++s) {
    const SubplanRunStats& st = r.subplans[s];
    // Exactly `pace` executions, the last at the trigger point.
    EXPECT_EQ(st.work_per_exec.size(), static_cast<size_t>(pace));
    EXPECT_DOUBLE_EQ(st.exec_fraction.back(), 1.0);
    // Every execution pays at least the startup cost.
    for (double w : st.work_per_exec) EXPECT_GE(w, 32.0 - 1e-9);
    // Totals are consistent.
    double sum = 0;
    for (double w : st.work_per_exec) sum += w;
    EXPECT_NEAR(sum, st.total_work, 1e-6);
  }

  // Net multiplicity of every query result row is positive.
  auto res = MaterializeResult(*exec.query_output(0), 0);
  for (const auto& [row, mult] : res) EXPECT_GT(mult, 0);
}

INSTANTIATE_TEST_SUITE_P(Paces, PaceSweep, ::testing::Values(1, 2, 5, 10, 25));

TEST(DuplicateRowTest, ProjectionCreatingDuplicatesKeepsMultiplicity) {
  // Dropping the key column creates duplicate rows whose multiplicities
  // must survive joins and aggregates.
  Schema s({{"id", DataType::kInt64}, {"cat", DataType::kInt64}});
  Catalog catalog;
  CHECK(catalog.AddTable("t", s, TableStats()).ok());
  StreamSource source;
  std::vector<Row> rows;
  for (int64_t i = 0; i < 30; ++i) rows.push_back({Value(i), Value(i % 3)});
  source.AddTable("t", s, std::move(rows));

  PlanBuilder b(&catalog, 0);
  // project to cat only -> 10 duplicates of each of 3 categories.
  PlanNodePtr proj =
      b.Project(b.ScanFiltered("t", nullptr), {{Col("cat"), "cat"}});
  QueryPlan q{0, "dup", b.Aggregate(proj, {"cat"}, {CountAgg("n")})};
  for (int pace : {1, 4}) {
    source.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &source);
    exec.Run(PaceConfig(g.num_subplans(), pace)).value();
    auto res = MaterializeResult(*exec.query_output(0), 0);
    ASSERT_EQ(res.size(), 3u);
    for (const auto& [row, mult] : res) {
      EXPECT_EQ(row[1].AsInt(), 10) << "pace " << pace;
    }
  }
}

TEST(DuplicateRowTest, JoinOnDuplicateRowsMultipliesWeights) {
  Schema s({{"k", DataType::kInt64}});
  Catalog catalog;
  CHECK(catalog.AddTable("a", s, TableStats()).ok());
  CHECK(catalog.AddTable("bt", s, TableStats()).ok());
  StreamSource source;
  // 'a' has key 7 twice; 'bt' has key 7 three times.
  source.AddTable("a", s, {{Value(int64_t{7})}, {Value(int64_t{7})}});
  source.AddTable("bt", s,
                  {{Value(int64_t{7})}, {Value(int64_t{7})},
                   {Value(int64_t{7})}});
  PlanBuilder b(&catalog, 0);
  QueryPlan q{0, "dupjoin",
              b.Aggregate(b.Join(b.ScanFiltered("a", nullptr),
                                 b.ScanFiltered("bt", nullptr), {"k"}, {"k"}),
                          {}, {CountAgg("n")})};
  for (int pace : {1, 2}) {
    source.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &source);
    exec.Run(PaceConfig(g.num_subplans(), pace)).value();
    auto res = MaterializeResult(*exec.query_output(0), 0);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res.begin()->first[0].AsInt(), 6) << "pace " << pace;
  }
}

TEST(MixedPaceTest, ParentLazierThanChildConverges) {
  // Shared subplan at pace 6, one parent at 3, one at 2, one at 1.
  TpchDb* db = Db();
  QueryPlan qa = PaperQueryA(db->catalog, 0);
  QueryPlan qb = PaperQueryB(db->catalog, 1);
  MqoOptimizer mqo(&db->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({qa, qb}));
  PaceConfig paces(g.num_subplans(), 1);
  for (int i : g.TopoChildrenFirst()) {
    paces[i] = g.subplan(i).children.empty() ? 6
               : g.subplan(i).parents.empty() ? 1
                                              : 2;
  }
  // Enforce parent <= child.
  for (int i : g.TopoParentsFirst()) {
    for (int c : g.subplan(i).children) {
      paces[c] = std::max(paces[c], paces[i]);
    }
  }
  db->Reset();
  PaceExecutor e1(&g, &db->source);
  e1.Run(paces).value();
  auto mixed0 = MaterializeResult(*e1.query_output(0), 0);
  auto mixed1 = MaterializeResult(*e1.query_output(1), 1);

  db->Reset();
  PaceExecutor e2(&g, &db->source);
  e2.Run(PaceConfig(g.num_subplans(), 1)).value();
  EXPECT_TRUE(ResultsNear(mixed0, MaterializeResult(*e2.query_output(0), 0)));
  EXPECT_TRUE(ResultsNear(mixed1, MaterializeResult(*e2.query_output(1), 1)));
}

}  // namespace
}  // namespace ishare
