// Unit tests for the recovery layer (DESIGN.md §8): serializer round
// trips, checkpoint frame validation (torn writes, checksum, version),
// store commit protocol, retry policy, checkpoint manager fallback, and
// the DeltaBuffer transient-fault/retry path through a real executor.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "ishare/exec/pace_executor.h"
#include "ishare/recovery/checkpoint.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/recovery/checkpoint_store.h"
#include "ishare/recovery/retry.h"
#include "ishare/recovery/serializer.h"
#include "ishare/storage/delta_buffer.h"
#include "test_util.h"

namespace ishare {
namespace {

using recovery::CheckpointHeader;
using recovery::CheckpointManager;
using recovery::CheckpointManagerOptions;
using recovery::CheckpointReader;
using recovery::CheckpointWriter;
using recovery::Checkpointable;
using recovery::DecodeCheckpoint;
using recovery::DecodedCheckpoint;
using recovery::EncodeCheckpoint;
using recovery::FileCheckpointStore;
using recovery::MemoryCheckpointStore;
using recovery::RetryPolicy;
using recovery::RetryTransient;

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

TEST(SerializerTest, ScalarRoundTrip) {
  CheckpointWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(3.14159);
  w.Bool(true);
  w.Bool(false);
  w.Str("hello");
  w.Str("");

  CheckpointReader r(w.data());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Finish().ok()) << r.Finish().ToString();
}

TEST(SerializerTest, DoublesAreBitExact) {
  // Bit-exact recovery depends on doubles surviving serialization exactly:
  // NaN payloads, signed zero, infinities, denormals.
  const double cases[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
  };
  CheckpointWriter w;
  for (double d : cases) w.F64(d);
  CheckpointReader r(w.data());
  for (double d : cases) {
    double got = r.F64();
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &d, sizeof(d));
    std::memcpy(&got_bits, &got, sizeof(got));
    EXPECT_EQ(got_bits, want_bits);
  }
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerializerTest, ValueRowQuerySetRoundTrip) {
  Row row = {Value(int64_t{7}), Value(2.5), Value(std::string("abc"))};
  QuerySet qs = QuerySet::FromIds({0, 3, 17});

  CheckpointWriter w;
  recovery::WriteRow(&w, row);
  recovery::WriteQuerySet(&w, qs);

  CheckpointReader r(w.data());
  Row row2 = recovery::ReadRow(&r);
  QuerySet qs2 = recovery::ReadQuerySet(&r);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(row == row2);
  EXPECT_EQ(qs.bits(), qs2.bits());
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerializerTest, TruncationIsStickyDataLoss) {
  CheckpointWriter w;
  w.U64(123);
  w.Str("payload");
  std::string data = w.Take();
  CheckpointReader r(std::string_view(data).substr(0, data.size() - 3));
  EXPECT_EQ(r.U64(), 123u);
  r.Str();  // short read poisons the reader
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Every later read returns zero values without crashing.
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.Finish().ok());
}

TEST(SerializerTest, TrailingBytesFailFinish) {
  CheckpointWriter w;
  w.U64(1);
  w.U64(2);
  CheckpointReader r(w.data());
  EXPECT_EQ(r.U64(), 1u);
  EXPECT_TRUE(r.ok());
  Status st = r.Finish();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(SerializerTest, EncodeRowKeyOrdersDeterministically) {
  // Same row, same bytes; different rows, different bytes.
  Row a = {Value(int64_t{1}), Value(std::string("x"))};
  Row b = {Value(int64_t{2}), Value(std::string("x"))};
  EXPECT_EQ(recovery::EncodeRowKey(a), recovery::EncodeRowKey(a));
  EXPECT_NE(recovery::EncodeRowKey(a), recovery::EncodeRowKey(b));
}

// ---------------------------------------------------------------------------
// Checkpoint frame
// ---------------------------------------------------------------------------

std::string MakeFrame(int64_t epoch = 3, int64_t step = 6,
                      const std::string& payload = "some payload bytes") {
  CheckpointHeader h;
  h.epoch = epoch;
  h.step = step;
  return EncodeCheckpoint(h, payload);
}

TEST(CheckpointFrameTest, RoundTrip) {
  std::string frame = MakeFrame(3, 6, "xyz");
  Result<DecodedCheckpoint> d = DecodeCheckpoint(frame);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->header.version, recovery::kCheckpointFormatVersion);
  EXPECT_EQ(d->header.epoch, 3);
  EXPECT_EQ(d->header.step, 6);
  EXPECT_EQ(d->payload, "xyz");
}

TEST(CheckpointFrameTest, TruncatedFrameIsDataLoss) {
  std::string frame = MakeFrame();
  for (size_t cut : {size_t{0}, size_t{5}, size_t{20}, frame.size() - 1}) {
    Result<DecodedCheckpoint> d =
        DecodeCheckpoint(std::string_view(frame).substr(0, cut));
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(CheckpointFrameTest, BadMagicIsDataLoss) {
  std::string frame = MakeFrame();
  frame[0] = 'X';
  Result<DecodedCheckpoint> d = DecodeCheckpoint(frame);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFrameTest, CorruptedPayloadByteIsDataLoss) {
  std::string frame = MakeFrame();
  frame[40] ^= 0x40;  // inside the payload
  Result<DecodedCheckpoint> d = DecodeCheckpoint(frame);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFrameTest, FlippedVersionByteIsCorruptionNotVersionMismatch) {
  // The checksum covers the version field and is verified first: a bit
  // flip in the version must read as corruption, never as "future format".
  std::string frame = MakeFrame();
  frame[8] ^= 0x02;  // version u32 starts right after the 8-byte magic
  Result<DecodedCheckpoint> d = DecodeCheckpoint(frame);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFrameTest, GenuineVersionMismatchIsNotSupported) {
  // An intact frame legitimately written by a newer format version (valid
  // checksum) is rejected as kNotSupported, distinct from corruption.
  CheckpointHeader h;
  h.version = recovery::kCheckpointFormatVersion + 1;
  std::string frame = EncodeCheckpoint(h, "future payload");
  Result<DecodedCheckpoint> d = DecodeCheckpoint(frame);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// Checkpoint stores
// ---------------------------------------------------------------------------

TEST(MemoryStoreTest, StageCommitProtocol) {
  MemoryCheckpointStore store;
  ASSERT_TRUE(store.Stage(1, "frame-1").ok());
  // Staged-but-uncommitted frames are invisible to recovery.
  EXPECT_TRUE(store.CommittedEpochs().empty());
  EXPECT_EQ(store.Load(1).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Commit(1).ok());
  ASSERT_EQ(store.CommittedEpochs(), std::vector<int64_t>{1});
  EXPECT_EQ(store.Load(1).value(), "frame-1");
  EXPECT_EQ(store.staged_count(), 0);

  // Committing an epoch that was never staged is an error.
  EXPECT_EQ(store.Commit(9).code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Stage(2, "frame-2").ok());
  ASSERT_TRUE(store.DiscardStaged().ok());
  EXPECT_EQ(store.Commit(2).code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Drop(1).ok());
  EXPECT_TRUE(store.CommittedEpochs().empty());
}

TEST(MemoryStoreTest, InjectedWriteFaultIsTransient) {
  MemoryCheckpointStore store;
  store.InjectWriteFault(Status::Unavailable("store flake"), 2);
  EXPECT_EQ(store.Stage(1, "x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.Stage(1, "x").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.Stage(1, "x").ok());  // fault disarmed after 2 hits
  EXPECT_TRUE(store.Commit(1).ok());
}

TEST(FileStoreTest, CommitIsRenameAndStagedFilesAreIgnored) {
  std::string dir = ::testing::TempDir() + "/ishare_ckpt_test";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);

  ASSERT_TRUE(store.Stage(4, "frame-4").ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/epoch_4.ckpt.staged"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/epoch_4.ckpt"));
  EXPECT_TRUE(store.CommittedEpochs().empty());

  ASSERT_TRUE(store.Commit(4).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/epoch_4.ckpt.staged"));
  ASSERT_EQ(store.CommittedEpochs(), std::vector<int64_t>{4});
  EXPECT_EQ(store.Load(4).value(), "frame-4");

  // A second store over the same directory (a restarted process) sees the
  // committed epoch but not staged leftovers.
  ASSERT_TRUE(store.Stage(8, "frame-8").ok());
  FileCheckpointStore reopened(dir);
  EXPECT_EQ(reopened.CommittedEpochs(), std::vector<int64_t>{4});
  ASSERT_TRUE(reopened.DiscardStaged().ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/epoch_8.ckpt.staged"));

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ShouldRetryOnlyTransientWithinBudget) {
  RetryPolicy p;
  p.max_attempts = 3;
  Status transient = Status::Unavailable("flaky");
  Status permanent = Status::Internal("bug");
  EXPECT_TRUE(p.ShouldRetry(transient, 1));
  EXPECT_TRUE(p.ShouldRetry(transient, 2));
  EXPECT_FALSE(p.ShouldRetry(transient, 3));  // budget exhausted
  EXPECT_FALSE(p.ShouldRetry(permanent, 1));
  EXPECT_FALSE(p.ShouldRetry(Status::OK(), 1));
}

TEST(RetryPolicyTest, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy p;
  p.max_attempts = 16;
  double prev_base = 0;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    double b1 = p.BackoffSeconds(attempt);
    double b2 = p.BackoffSeconds(attempt);
    EXPECT_EQ(b1, b2) << "backoff must be a pure function of the attempt";
    EXPECT_GE(b1, p.base_backoff_seconds * (1.0 - p.jitter) * 0.999);
    EXPECT_LE(b1, p.max_backoff_seconds * (1.0 + p.jitter) * 1.001);
    // The un-jittered base doubles until the cap; spot-check monotone
    // growth of the envelope rather than each jittered sample.
    double base = std::min(
        p.base_backoff_seconds * std::pow(p.backoff_multiplier, attempt - 1),
        p.max_backoff_seconds);
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
}

TEST(RetryPolicyTest, DifferentSeedsGiveDifferentJitter) {
  RetryPolicy a, b;
  b.jitter_seed = a.jitter_seed + 1;
  bool any_different = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    if (a.BackoffSeconds(attempt) != b.BackoffSeconds(attempt)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryTransientTest, SucceedsAfterTransientFailures) {
  RetryPolicy p;
  p.max_attempts = 4;
  int calls = 0, attempts = 0;
  double backoff = 0;
  Status st = RetryTransient(
      p,
      [&calls]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &attempts, &backoff);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  EXPECT_GT(backoff, 0.0);
}

TEST(RetryTransientTest, PermanentErrorFailsImmediately) {
  RetryPolicy p;
  int calls = 0;
  Status st = RetryTransient(p, [&calls]() {
    ++calls;
    return Status::Internal("bug");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, ExhaustedBudgetReturnsLastTransientError) {
  RetryPolicy p;
  p.max_attempts = 3;
  int calls = 0;
  Status st = RetryTransient(p, [&calls]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTransientTest, MaxAttemptBoundaryIsExact) {
  // The off-by-one contract pinned down: against a persistent transient
  // fault, RetryTransient makes exactly EffectiveMaxAttempts() calls and
  // accrues exactly one fewer backoffs (no backoff after the final try).
  for (int budget = 1; budget <= 5; ++budget) {
    RetryPolicy p;
    p.max_attempts = budget;
    int calls = 0, attempts = 0;
    double backoff = 0;
    Status st = RetryTransient(
        p,
        [&calls]() {
          ++calls;
          return Status::Unavailable("never up");
        },
        &attempts, &backoff);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << "budget " << budget;
    EXPECT_EQ(calls, budget);
    EXPECT_EQ(attempts, budget);
    double expected = 0;
    for (int a = 1; a < budget; ++a) expected += p.BackoffSeconds(a);
    EXPECT_DOUBLE_EQ(backoff, expected) << "budget " << budget;
  }
}

TEST(RetryTransientTest, NonPositiveBudgetStillMakesTheInitialAttempt) {
  // max_attempts < 1 must mean "one try, zero retries" — never "no call"
  // and never an unbounded loop.
  for (int budget : {0, -1, -100}) {
    RetryPolicy p;
    p.max_attempts = budget;
    EXPECT_EQ(p.EffectiveMaxAttempts(), 1);
    EXPECT_FALSE(p.ShouldRetry(Status::Unavailable("x"), 1));
    int calls = 0;
    double backoff = 0;
    Status st = RetryTransient(
        p,
        [&calls]() {
          ++calls;
          return Status::Unavailable("down");
        },
        nullptr, &backoff);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << "budget " << budget;
    EXPECT_EQ(calls, 1) << "budget " << budget;
    EXPECT_EQ(backoff, 0.0) << "no backoff after the only try";
    // BackoffSeconds clamps non-positive attempts instead of feeding a
    // zero exponent garbage.
    EXPECT_GT(p.BackoffSeconds(0), 0.0);
    EXPECT_EQ(p.BackoffSeconds(0), p.BackoffSeconds(1));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint manager
// ---------------------------------------------------------------------------

// Minimal Checkpointable: one int64 of state.
class CounterState : public Checkpointable {
 public:
  Status Snapshot(CheckpointWriter* w) const override {
    w->I64(value);
    return Status::OK();
  }
  Status Restore(CheckpointReader* r) override {
    value = r->I64();
    return r->status();
  }
  int64_t value = 0;
};

TEST(CheckpointManagerTest, PeriodicCadenceAndRecoverLatest) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions opts;
  opts.epoch_len = 2;
  opts.overhead_budget = 0;  // strict cadence: every boundary checkpoints
  CheckpointManager mgr(&store, opts);

  CounterState state;
  for (int64_t step = 1; step <= 5; ++step) {
    state.value = step * 100;
    ASSERT_TRUE(mgr.OnStepComplete(step, state).ok());
  }
  // Steps 2 and 4 were epoch boundaries.
  EXPECT_EQ(store.CommittedEpochs(), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(mgr.stats().checkpoints, 2);
  EXPECT_GT(mgr.stats().checkpoint_bytes, 0);

  CounterState fresh;
  Result<int64_t> step = mgr.RecoverLatest(&fresh);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(*step, 4);
  EXPECT_EQ(fresh.value, 400);
  EXPECT_EQ(mgr.stats().restores, 1);
}

TEST(CheckpointManagerTest, RecoverLatestNotFoundOnEmptyStore) {
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  CounterState state;
  EXPECT_EQ(mgr.RecoverLatest(&state).status().code(), StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, StagedButUncommittedIsInvisible) {
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  CounterState state;
  state.value = 42;
  // The "crash between snapshot and commit" window.
  ASSERT_TRUE(mgr.Checkpoint(7, state, /*commit=*/false).ok());
  CounterState fresh;
  EXPECT_EQ(mgr.RecoverLatest(&fresh).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fresh.value, 0);
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToOlderEpoch) {
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  CounterState state;
  state.value = 100;
  ASSERT_TRUE(mgr.Checkpoint(2, state).ok());
  state.value = 200;
  ASSERT_TRUE(mgr.Checkpoint(4, state).ok());
  store.CorruptCommitted(4, "garbage that fails frame validation");

  CounterState fresh;
  Result<int64_t> step = mgr.RecoverLatest(&fresh);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(*step, 2);
  EXPECT_EQ(fresh.value, 100);
  EXPECT_EQ(mgr.stats().torn_discarded, 1);
  // The corrupt epoch was dropped from the store.
  EXPECT_EQ(store.CommittedEpochs(), std::vector<int64_t>{2});
}

// The budget cadence decisions run off an injected clock that advances a
// fixed tick per observation, so checkpoint "cost" (the interval between
// the manager's before/after reads) is a known constant.
TEST(CheckpointManagerTest, BudgetSkipsUnaffordableBoundaries) {
  MemoryCheckpointStore store;
  double now = 0;
  CheckpointManagerOptions opts;
  opts.epoch_len = 2;
  opts.overhead_budget = 0.05;
  opts.clock = [&now] {
    now += 0.010;
    return now;
  };
  CheckpointManager mgr(&store, opts);

  CounterState state;
  state.value = 1;
  // First due boundary always checkpoints (calibration) and records its
  // cost — one clock tick = 10ms.
  ASSERT_TRUE(mgr.OnStepComplete(2, state).ok());
  EXPECT_EQ(mgr.stats().checkpoints, 1);
  EXPECT_NEAR(mgr.last_checkpoint_cost(), 0.010, 1e-12);

  // Next boundary arrives almost immediately: 10ms of cost against a few
  // ms of elapsed execution blows the 5% budget, so it is skipped.
  state.value = 2;
  ASSERT_TRUE(mgr.OnStepComplete(4, state).ok());
  EXPECT_EQ(mgr.stats().checkpoints, 1);
  EXPECT_EQ(mgr.stats().budget_skipped, 1);
  EXPECT_EQ(store.CommittedEpochs(), std::vector<int64_t>{2});

  // After enough execution time (10ms cost / 5% budget = 200ms) the next
  // boundary is affordable again.
  now += 1.0;
  state.value = 3;
  ASSERT_TRUE(mgr.OnStepComplete(6, state).ok());
  EXPECT_EQ(mgr.stats().checkpoints, 2);
  EXPECT_EQ(store.CommittedEpochs(), (std::vector<int64_t>{2, 6}));

  // Recovery sees the affordable checkpoints only.
  CounterState fresh;
  Result<int64_t> step = mgr.RecoverLatest(&fresh);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(*step, 6);
  EXPECT_EQ(fresh.value, 3);
}

TEST(CheckpointManagerTest, ZeroBudgetMeansStrictCadence) {
  MemoryCheckpointStore store;
  double now = 0;
  CheckpointManagerOptions opts;
  opts.epoch_len = 1;
  opts.overhead_budget = 0;
  opts.clock = [&now] {
    now += 10.0;  // absurdly expensive checkpoints
    return now;
  };
  CheckpointManager mgr(&store, opts);
  CounterState state;
  for (int64_t step = 1; step <= 3; ++step) {
    state.value = step;
    ASSERT_TRUE(mgr.OnStepComplete(step, state).ok());
  }
  EXPECT_EQ(mgr.stats().checkpoints, 3);
  EXPECT_EQ(mgr.stats().budget_skipped, 0);
}

TEST(CheckpointManagerTest, TransientStoreFaultIsRetried) {
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  store.InjectWriteFault(Status::Unavailable("store flake"), 1);
  CounterState state;
  state.value = 7;
  ASSERT_TRUE(mgr.Checkpoint(1, state).ok());
  EXPECT_EQ(store.CommittedEpochs(), std::vector<int64_t>{1});
  EXPECT_GE(mgr.stats().store_retry_attempts, 1);
  EXPECT_GT(mgr.stats().store_retry_backoff_seconds, 0.0);
}

TEST(CheckpointManagerTest, PermanentStoreFaultFailsCheckpoint) {
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  store.InjectWriteFault(Status::Internal("disk on fire"), -1);
  CounterState state;
  EXPECT_EQ(mgr.Checkpoint(1, state).code(), StatusCode::kInternal);
}

TEST(CheckpointManagerTest, HealthSignalsTrackFailuresAndCommits) {
  // Checkpoint health (DESIGN.md §11): consecutive_failures counts the
  // current streak of failed Checkpoint() calls and resets on the next
  // commit; last_commit_epoch tracks the newest committed epoch.
  MemoryCheckpointStore store;
  CheckpointManagerOptions opts;
  opts.epoch_len = 1;
  opts.overhead_budget = 0;
  opts.store_retry.max_attempts = 1;  // every injected fault is fatal
  CheckpointManager mgr(&store, opts);
  CounterState state;

  EXPECT_EQ(mgr.stats().consecutive_failures, 0);
  EXPECT_EQ(mgr.stats().last_commit_epoch, 0);

  ASSERT_TRUE(mgr.Checkpoint(1, state).ok());
  EXPECT_EQ(mgr.stats().consecutive_failures, 0);
  EXPECT_EQ(mgr.stats().last_commit_epoch, 1);

  store.InjectWriteFault(Status::Unavailable("outage"), 2);
  EXPECT_FALSE(mgr.Checkpoint(2, state).ok());
  EXPECT_EQ(mgr.stats().consecutive_failures, 1);
  EXPECT_FALSE(mgr.Checkpoint(3, state).ok());
  EXPECT_EQ(mgr.stats().consecutive_failures, 2);
  EXPECT_EQ(mgr.stats().last_commit_epoch, 1) << "failed epochs don't count";

  ASSERT_TRUE(mgr.Checkpoint(4, state).ok());
  EXPECT_EQ(mgr.stats().consecutive_failures, 0) << "streak resets on commit";
  EXPECT_EQ(mgr.stats().last_commit_epoch, 4);
}

TEST(CheckpointManagerTest, StagedOnlyCheckpointDoesNotAdvanceHealth) {
  // commit = false stages without publishing; the health signals must not
  // claim an epoch that recovery can never see.
  MemoryCheckpointStore store;
  CheckpointManager mgr(&store);
  CounterState state;
  ASSERT_TRUE(mgr.Checkpoint(2, state, /*commit=*/false).ok());
  EXPECT_EQ(mgr.stats().last_commit_epoch, 0);
  EXPECT_EQ(mgr.stats().consecutive_failures, 0);
  ASSERT_TRUE(mgr.Checkpoint(4, state).ok());
  EXPECT_EQ(mgr.stats().last_commit_epoch, 4);
}

// ---------------------------------------------------------------------------
// DeltaBuffer faults and the executor retry path
// ---------------------------------------------------------------------------

Schema OneCol() { return Schema({{"x", DataType::kInt64}}); }

TEST(DeltaBufferFaultTest, TransientFaultAutoDisarms) {
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  buf.InjectFault(Status::Unavailable("partition handoff"), 2);
  EXPECT_EQ(buf.ConsumeNew(c).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(buf.HasFault());
  EXPECT_EQ(buf.ConsumeNew(c).status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(buf.HasFault());  // disarmed after the 2nd failure
  EXPECT_EQ(buf.ConsumeNew(c).value().size(), 1u);
}

TEST(DeltaBufferFaultTest, ResetDisarmsInjectedFault) {
  // Regression: Reset() used to clear the log and offsets but leave an
  // injected fault armed, so a "fresh" buffer kept failing consumes.
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  buf.InjectFault(Status::Internal("poisoned"));
  ASSERT_TRUE(buf.HasFault());
  buf.Reset();
  EXPECT_FALSE(buf.HasFault());
  buf.Append(DeltaTuple({Value(int64_t{5})}, QuerySet::Single(0), 1));
  EXPECT_EQ(buf.ConsumeNew(c).value().size(), 1u);
}

TEST(DeltaBufferFaultTest, InjectZeroTimesIsNoop) {
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  buf.InjectFault(Status::Unavailable("x"), 0);
  EXPECT_FALSE(buf.HasFault());
  EXPECT_TRUE(buf.ConsumeNew(c).ok());
}

// A window whose base buffer throws a few transient faults still completes
// (executor-level retry with virtual backoff), and matches the clean run's
// results exactly. A permanent fault still fails the run.
TEST(ExecutorRetryTest, TransientBaseFaultsAreRetriedToSuccess) {
  TestDb db(/*n_orders=*/60, /*n_customers=*/6);
  QuerySet q0 = QuerySet::Single(0);
  PlanNodePtr scan = PlanNode::MakeScan(db.catalog, "orders", q0);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      scan, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, q0);
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "q0", agg}});

  db.source.Reset();
  PaceExecutor clean(&g, &db.source);
  RunResult clean_run = clean.Run({4}).value();
  auto clean_result = MaterializeResult(*clean.query_output(0), 0);

  db.source.Reset();
  ExecOptions opts;
  opts.retry.max_attempts = 4;
  PaceExecutor exec(&g, &db.source, opts);
  // Two consecutive transient failures, then the buffer recovers; the
  // default policy has budget for both.
  db.source.buffer("orders")->InjectFault(
      Status::Unavailable("partition moving"), 2);
  Result<RunResult> r = exec.Run({4});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_work, clean_run.total_work);
  EXPECT_EQ(MaterializeResult(*exec.query_output(0), 0), clean_result);
}

TEST(ExecutorRetryTest, ExhaustedTransientBudgetFailsRun) {
  TestDb db(/*n_orders=*/40, /*n_customers=*/4);
  QuerySet q0 = QuerySet::Single(0);
  PlanNodePtr scan = PlanNode::MakeScan(db.catalog, "orders", q0);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      scan, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, q0);
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "q0", agg}});

  db.source.Reset();
  ExecOptions opts;
  opts.retry.max_attempts = 2;
  PaceExecutor exec(&g, &db.source, opts);
  db.source.buffer("orders")->InjectFault(
      Status::Unavailable("long outage"), 10);
  Result<RunResult> r = exec.Run({2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(ExecutorRetryTest, PermanentFaultFailsWithoutRetry) {
  TestDb db(/*n_orders=*/40, /*n_customers=*/4);
  QuerySet q0 = QuerySet::Single(0);
  PlanNodePtr scan = PlanNode::MakeScan(db.catalog, "orders", q0);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      scan, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, q0);
  SubplanGraph g = SubplanGraph::Build({QueryPlan{0, "q0", agg}});

  db.source.Reset();
  PaceExecutor exec(&g, &db.source);
  db.source.buffer("orders")->InjectFault(Status::Internal("poisoned"), 1);
  Result<RunResult> r = exec.Run({2});
  ASSERT_FALSE(r.ok());
  // Had it been retried, the fault (times=1) would have disarmed and the
  // run would have succeeded; failing proves permanent = no retry.
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ishare
