// Robustness suite:
//  - the recoverable error spine (Status instead of aborts on bad consumer
//    ids, backwards/NaN fractions, pace misconfiguration, poisoned buffers),
//  - exact release targets at pace boundaries (paces 3, 7, 11),
//  - the fault-injecting PerturbedStreamSource (determinism, monotonicity,
//    trigger completeness),
//  - the adaptive executor's correctness invariance: results match batch
//    execution under random fault plans and pace configurations.

#include <gtest/gtest.h>

#include <algorithm>

#include "ishare/exec/adaptive_executor.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/opt/approaches.h"
#include "ishare/storage/perturbed_source.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

Schema OneCol() { return Schema({{"x", DataType::kInt64}}); }

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value(int64_t{i})});
  return rows;
}

// ---------------------------------------------------------------------------
// Recoverable error spine
// ---------------------------------------------------------------------------

TEST(ErrorSpine, BadConsumerIdReturnsInvalidArgument) {
  DeltaBuffer buf(OneCol(), "t");
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  auto r = buf.ConsumeNew(5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Out-of-range consumer ids surface as errors from the inspection
  // accessors too, instead of a -1 sentinel callers could miss.
  EXPECT_EQ(buf.ConsumerOffset(5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buf.Pending(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorSpine, NegativeConsumeLimitReturnsInvalidArgument) {
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  auto r = buf.ConsumeUpTo(c, -1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The failed consume must not have advanced the offset.
  EXPECT_EQ(buf.Pending(c).value(), 1);
}

TEST(ErrorSpine, InjectedFaultSurfacesAndClears) {
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  buf.InjectFault(Status::Internal("poisoned partition"));
  auto r = buf.ConsumeNew(c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  buf.ClearFault();
  EXPECT_EQ(buf.ConsumeNew(c).value().size(), 1u);
}

TEST(ErrorSpine, StreamSourceRejectsBadFractions) {
  StreamSource src;
  src.AddTable("t", OneCol(), MakeRows(10));
  EXPECT_EQ(src.AdvanceTo(std::nan("")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(src.AdvanceTo(1.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(src.AdvanceTo(-0.2).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(src.AdvanceTo(0.5).ok());
  // Backwards advancement is a contract violation, not a crash.
  EXPECT_EQ(src.AdvanceTo(0.2).code(), StatusCode::kInvalidArgument);
  // The failed calls released nothing extra.
  EXPECT_EQ(src.buffer("t")->size(), 5);
}

TEST(ErrorSpine, StreamSourceRejectsBadSteps) {
  StreamSource src;
  src.AddTable("t", OneCol(), MakeRows(10));
  EXPECT_EQ(src.AdvanceToStep(1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(src.AdvanceToStep(-1, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(src.AdvanceToStep(4, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(src.AdvanceToStep(1, 3).ok());
}

TEST(ErrorSpine, DuplicateAndUnknownTablesReturnSentinels) {
  StreamSource src;
  EXPECT_NE(src.AddTable("t", OneCol(), MakeRows(3)), nullptr);
  EXPECT_EQ(src.AddTable("t", OneCol(), MakeRows(3)), nullptr);
  EXPECT_EQ(src.buffer("nope"), nullptr);
  EXPECT_EQ(src.TotalRows("nope"), -1);
}

TEST(ErrorSpine, PaceValidationReturnsStatus) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "count",
              b.Aggregate(b.ScanFiltered("orders", nullptr), {},
                          {CountAgg("n")})};
  SubplanGraph g = SubplanGraph::Build({q});
  PaceExecutor exec(&g, &db.source);
  auto bad_pace = exec.Run(PaceConfig(g.num_subplans(), 0));
  ASSERT_FALSE(bad_pace.ok());
  EXPECT_EQ(bad_pace.status().code(), StatusCode::kInvalidArgument);
  auto bad_size = exec.Run(PaceConfig(g.num_subplans() + 1, 1));
  ASSERT_FALSE(bad_size.ok());
  EXPECT_EQ(bad_size.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorSpine, ExecutorSurfacesPoisonedBufferInsteadOfCrashing) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "join",
              b.Aggregate(b.Join(b.ScanFiltered("orders", nullptr),
                                 b.ScanFiltered("customer", nullptr),
                                 {"o_custkey"}, {"c_custkey"}),
                          {"c_region"}, {CountAgg("n")})};
  SubplanGraph g = SubplanGraph::Build({q});
  PaceExecutor exec(&g, &db.source);
  db.source.buffer("orders")->InjectFault(
      Status::Internal("poisoned partition"));
  auto r = exec.Run(PaceConfig(g.num_subplans(), 2));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("poisoned"), std::string::npos);
  db.source.buffer("orders")->ClearFault();
}

TEST(ErrorSpine, AdaptiveExecutorValidatesPaces) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "count",
              b.Aggregate(b.ScanFiltered("orders", nullptr), {},
                          {CountAgg("n")})};
  SubplanGraph g = SubplanGraph::Build({q});
  CostEstimator est(&g, &db.catalog);
  AdaptiveExecutor exec(&est, &db.source, {1e18});
  auto r = exec.Run(PaceConfig(g.num_subplans(), -3));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Exact pace-boundary release (regression for paces 3, 7, 11)
// ---------------------------------------------------------------------------

class PaceBoundary : public ::testing::TestWithParam<int> {};

TEST_P(PaceBoundary, StepTargetsAreExactIntegerFloors) {
  int pace = GetParam();
  for (int64_t total : {30, 97, 100, 1000}) {
    StreamSource src;
    DeltaBuffer* buf =
        src.AddTable("t", OneCol(), MakeRows(static_cast<int>(total)));
    for (int i = 1; i <= pace; ++i) {
      ASSERT_TRUE(src.AdvanceToStep(i, pace).ok());
      // floor(i * total / pace) computed in integers: no binary-fraction
      // drift even for paces 3, 7, 11 whose reciprocals are non-dyadic.
      EXPECT_EQ(buf->size(), i * total / pace)
          << "pace " << pace << " step " << i << " total " << total;
    }
    EXPECT_EQ(buf->size(), total);
  }
}

TEST_P(PaceBoundary, DoublePathAgreesWithExactPathAtBoundaries) {
  int pace = GetParam();
  for (int64_t total : {30, 97, 1000}) {
    StreamSource src;
    DeltaBuffer* buf =
        src.AddTable("t", OneCol(), MakeRows(static_cast<int>(total)));
    for (int i = 1; i <= pace; ++i) {
      ASSERT_TRUE(src.AdvanceTo(static_cast<double>(i) / pace).ok());
      EXPECT_EQ(buf->size(), i * total / pace)
          << "pace " << pace << " step " << i << " total " << total;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NonDyadicPaces, PaceBoundary,
                         ::testing::Values(3, 7, 11));

// ---------------------------------------------------------------------------
// PerturbedStreamSource
// ---------------------------------------------------------------------------

TEST(PerturbedSource, SameSeedReleasesIdenticalStreams) {
  FaultPlan plan = FaultPlan::Random(7, 5, {"t"});
  ASSERT_TRUE(plan.Validate().ok());
  PerturbedStreamSource a(plan), bsrc(plan);
  a.AddTable("t", OneCol(), MakeRows(200));
  bsrc.AddTable("t", OneCol(), MakeRows(200));
  for (int i = 1; i <= 13; ++i) {
    ASSERT_TRUE(a.AdvanceToStep(i, 13).ok());
    ASSERT_TRUE(bsrc.AdvanceToStep(i, 13).ok());
    ASSERT_EQ(a.buffer("t")->size(), bsrc.buffer("t")->size()) << i;
  }
  const auto& la = a.buffer("t")->log();
  const auto& lb = bsrc.buffer("t")->log();
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].ToString(), lb[i].ToString());
  }
  // Replays after Reset() are identical too (reorder permutations cached).
  int64_t before = a.buffer("t")->size();
  a.Reset();
  ASSERT_TRUE(a.AdvanceTo(1.0).ok());
  EXPECT_EQ(a.buffer("t")->size(), before);
}

TEST(PerturbedSource, EveryFaultKindStillReleasesAllAtTrigger) {
  for (auto kind :
       {FaultEvent::Kind::kBurst, FaultEvent::Kind::kStall,
        FaultEvent::Kind::kRateDrift, FaultEvent::Kind::kJitter,
        FaultEvent::Kind::kReorder}) {
    FaultPlan plan;
    plan.seed = 3;
    FaultEvent e;
    e.kind = kind;
    e.at = 0.3;
    e.duration = 0.3;
    e.magnitude = 0.5;
    plan.events.push_back(e);
    PerturbedStreamSource src(plan);
    DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(101));
    int64_t prev = 0;
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE(src.AdvanceTo(i / 10.0).ok());
      EXPECT_GE(buf->size(), prev);  // releases are monotone
      prev = buf->size();
    }
    // The trigger releases everything regardless of the fault: correctness
    // is invariant, only the timing of work changes.
    EXPECT_EQ(buf->size(), 101) << plan.ToString();
  }
}

TEST(PerturbedSource, WarpIsBoundedAndMonotone) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    FaultPlan plan = FaultPlan::Random(seed, 6, {"t"});
    PerturbedStreamSource src(plan);
    src.AddTable("t", OneCol(), MakeRows(10));
    double prev = -1;
    for (int i = 0; i <= 50; ++i) {
      double w = src.WarpFraction("t", i / 50.0);
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
      EXPECT_GE(w, prev - 1e-12) << plan.ToString();
      prev = w;
    }
  }
}

TEST(PerturbedSource, InvalidPlanSurfacesOnAdvance) {
  FaultPlan plan;
  FaultEvent e;
  e.at = 2.0;  // outside the window
  plan.events.push_back(e);
  EXPECT_EQ(plan.Validate().code(), StatusCode::kOutOfRange);
  PerturbedStreamSource src(plan);
  src.AddTable("t", OneCol(), MakeRows(10));
  EXPECT_EQ(src.AdvanceTo(0.5).code(), StatusCode::kOutOfRange);
}

TEST(PerturbedSource, ReorderNeverMovesDeleteBeforeInsert) {
  FaultPlan plan;
  plan.seed = 11;
  FaultEvent e;
  e.kind = FaultEvent::Kind::kReorder;
  e.at = 0.0;
  e.duration = 1.0;
  plan.events.push_back(e);
  PerturbedStreamSource src(plan);
  // Insert/delete pairs: the whole region contains retractions, so the
  // reorder must leave it untouched.
  std::vector<DeltaTuple> deltas;
  for (int i = 0; i < 10; ++i) {
    deltas.emplace_back(Row{Value(int64_t{i})}, QuerySet::Single(0), 1);
    deltas.emplace_back(Row{Value(int64_t{i})}, QuerySet::Single(0), -1);
  }
  DeltaBuffer* buf = src.AddTableDeltas("t", OneCol(), std::move(deltas));
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  int64_t net = 0;
  for (const DeltaTuple& t : buf->log()) {
    net += t.weight;
    ASSERT_GE(net, 0);  // a delete never precedes its insert
  }
  EXPECT_EQ(net, 0);
}

// ---------------------------------------------------------------------------
// Property: adaptive execution matches batch under random faults and paces
// ---------------------------------------------------------------------------

TpchDb* Db() {
  static TpchDb* db = new TpchDb(TpchScale{0.004, 29});
  return db;
}

TEST(AdaptiveCorrectness, MatchesBatchUnderRandomFaultPlansAndPaces) {
  TpchDb* db = Db();
  QueryPlan qa = PaperQueryA(db->catalog, 0);
  QueryPlan qb = PaperQueryB(db->catalog, 1);
  MqoOptimizer mqo(&db->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({qa, qb}));

  // Clean batch baseline.
  db->Reset();
  PaceExecutor batch(&g, &db->source);
  batch.Run(PaceConfig(g.num_subplans(), 1)).value();
  auto base0 = MaterializeResult(*batch.query_output(0), 0);
  auto base1 = MaterializeResult(*batch.query_output(1), 1);

  std::vector<double> abs =
      AbsoluteConstraints({qa, qb}, db->catalog, {0.4, 0.4});

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultPlan plan =
        FaultPlan::Random(seed, 4, db->source.TableNames());
    PerturbedStreamSource psrc(plan);
    ASSERT_TRUE(db->source.CloneTablesInto(&psrc).ok());

    // Random initial paces with the parent <= child engine requirement.
    Rng rng(seed * 1000 + 17);
    PaceConfig paces(g.num_subplans(), 1);
    for (int i = 0; i < g.num_subplans(); ++i) {
      paces[i] = static_cast<int>(rng.UniformInt(1, 6));
    }
    for (int i : g.TopoParentsFirst()) {
      for (int c : g.subplan(i).children) {
        paces[c] = std::max(paces[c], paces[i]);
      }
    }

    CostEstimator est(&g, &db->catalog);
    AdaptiveExecutor exec(&est, &psrc, abs);
    auto r = exec.Run(paces);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << plan.ToString();
    EXPECT_LE(r->stats.rederivations, AdaptivePolicy().max_rederivations);

    EXPECT_TRUE(ResultsNear(MaterializeResult(*exec.query_output(0), 0),
                            base0))
        << plan.ToString();
    EXPECT_TRUE(ResultsNear(MaterializeResult(*exec.query_output(1), 1),
                            base1))
        << plan.ToString();
  }
}

TEST(AdaptiveCorrectness, IntegerResultsExactlyEqualBatchUnderFaults) {
  // Integer-only query: results must be bit-identical, not just near.
  Schema s({{"id", DataType::kInt64}, {"cat", DataType::kInt64}});
  Catalog catalog;
  CHECK(catalog.AddTable("t", s, TableStats()).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 120; ++i) rows.push_back({Value(i), Value(i % 7)});

  PlanBuilder b(&catalog, 0);
  QueryPlan q{0, "cnt",
              b.Aggregate(b.ScanFiltered("t", nullptr), {"cat"},
                          {CountAgg("n")})};
  SubplanGraph g = SubplanGraph::Build({q});

  StreamSource clean;
  clean.AddTable("t", s, rows);
  PaceExecutor batch(&g, &clean);
  batch.Run(PaceConfig(g.num_subplans(), 1)).value();
  auto base = MaterializeResult(*batch.query_output(0), 0);

  FaultPlan plan;
  plan.seed = 99;
  plan.events.push_back({FaultEvent::Kind::kBurst, 0.2, 0, 0.25, ""});
  plan.events.push_back({FaultEvent::Kind::kStall, 0.5, 0.2, 0, ""});
  plan.events.push_back({FaultEvent::Kind::kReorder, 0.1, 0.6, 0, ""});
  PerturbedStreamSource psrc(plan);
  psrc.AddTable("t", s, rows);

  CostEstimator est(&g, &catalog);
  AdaptiveExecutor exec(&est, &psrc, {1e18});
  auto r = exec.Run(PaceConfig(g.num_subplans(), 5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto res = MaterializeResult(*exec.query_output(0), 0);
  ASSERT_EQ(res.size(), base.size());
  for (const auto& [row, mult] : base) {
    auto it = res.find(row);
    ASSERT_NE(it, res.end()) << RowToString(row);
    EXPECT_EQ(it->second, mult);
  }
}

TEST(AdaptiveDegradation, SkipsOnlySlackSubplansAndStaysCorrect) {
  TpchDb* db = Db();
  QueryPlan qa = PaperQueryA(db->catalog, 0);
  QueryPlan qb = PaperQueryB(db->catalog, 1);
  MqoOptimizer mqo(&db->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({qa, qb}));

  db->Reset();
  PaceExecutor batch(&g, &db->source);
  batch.Run(PaceConfig(g.num_subplans(), 1)).value();
  auto base0 = MaterializeResult(*batch.query_output(0), 0);

  // A heavy burst early in the window with generous constraints: the
  // executor may skip intermediate executions but results must not change.
  FaultPlan plan;
  plan.seed = 5;
  plan.events.push_back({FaultEvent::Kind::kBurst, 0.15, 0, 0.5, ""});
  PerturbedStreamSource psrc(plan);
  ASSERT_TRUE(db->source.CloneTablesInto(&psrc).ok());

  std::vector<double> abs =
      AbsoluteConstraints({qa, qb}, db->catalog, {5.0, 5.0});
  CostEstimator est(&g, &db->catalog);
  AdaptivePolicy policy;
  policy.overload_factor = 1.1;  // aggressive degradation
  policy.min_drift_samples = 1;
  AdaptiveExecutor exec(&est, &psrc, abs, policy);
  auto r = exec.Run(PaceConfig(g.num_subplans(), 8));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(
      ResultsNear(MaterializeResult(*exec.query_output(0), 0), base0));
}

}  // namespace
}  // namespace ishare
