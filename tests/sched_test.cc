// Scheduler suite (DESIGN.md §10):
//  - WorkerPool units: every ParallelFor index runs exactly once, nested
//    ParallelFor does not deadlock, the 1-thread pool degenerates to an
//    in-order serial loop, degenerate counts are no-ops,
//  - wave construction units: waves respect runnable producer/consumer
//    edges, non-runnable children impose no ordering, concatenated waves
//    are a permutation of the runnable set, StaticLevels covers the graph,
//  - the bit-exactness property: across 100 seeded random shared TPC-H
//    plans x {2, 4, 8} threads, a parallel run's materialized results,
//    state fingerprint and (curated) metrics are bit-identical to the
//    serial run's — the scheduler may only move work across threads,
//    never change a single bit of what is computed.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/rng.h"
#include "ishare/cost/estimator.h"
#include "ishare/exec/adaptive_executor.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/sched/wave.h"
#include "ishare/sched/worker_pool.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  sched::WorkerPool pool(4);
  const int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller of an inner ParallelFor helps while waiting, so a task
  // that itself fans out (a subplan execution hitting a morsel-parallel
  // operator) cannot deadlock even when every worker is busy.
  sched::WorkerPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(16, [&](int64_t) { sum.fetch_add(1); });
  });
  EXPECT_EQ(sum.load(), 8 * 16);
}

TEST(WorkerPoolTest, SingleThreadPoolIsAnInOrderSerialLoop) {
  // num_threads <= 1 must not only produce the same multiset of calls but
  // run them in index order on the calling thread — the serial baseline
  // the equivalence tests compare against.
  sched::WorkerPool pool(1);
  std::vector<int64_t> order;
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(64, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 64u);
  for (int64_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPoolTest, DegenerateCountsAreNoOps) {
  sched::WorkerPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(WorkerPoolTest, ManySmallParallelForsDrainCleanly) {
  // Leftover helper tasks from a finished ParallelFor must exit without
  // touching the (destroyed) loop body; hammering small loops back to
  // back is the stress shape that would expose a stale-task bug.
  sched::WorkerPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(3, [&](int64_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 200 * 6);
}

// ---------------------------------------------------------------------------
// Wave construction
// ---------------------------------------------------------------------------

// agg -> filter -> agg chain cut at aggregates: two subplans, child feeds
// parent. The smallest graph with a real producer/consumer edge.
SubplanGraph ChainGraph(TestDb* db) {
  PlanBuilder b(&db->catalog, 0);
  PlanNodePtr inner = b.Aggregate(b.ScanFiltered("orders", nullptr),
                                  {"o_custkey"},
                                  {SumAgg(Col("o_amount"), "t")});
  QueryPlan q{0, "chain",
              b.Aggregate(b.Filter(inner, Gt(Col("t"), Lit(100.0))), {},
                          {CountAgg("n")})};
  return SubplanGraph::Build({q}, [](const PlanNode& n) {
    return n.kind == PlanKind::kAggregate;
  });
}

TEST(WaveTest, RunnableChildPrecedesParent) {
  TestDb db;
  SubplanGraph g = ChainGraph(&db);
  ASSERT_EQ(g.num_subplans(), 2);
  std::vector<int> runnable = g.TopoChildrenFirst();
  std::vector<std::vector<int>> waves = sched::BuildWaves(g, runnable);
  ASSERT_EQ(waves.size(), 2u);
  int child = g.subplan(g.query_root(0)).children[0];
  EXPECT_EQ(waves[0], std::vector<int>{child});
  EXPECT_EQ(waves[1], std::vector<int>{g.query_root(0)});
}

TEST(WaveTest, NonRunnableChildImposesNoOrdering) {
  // When only the parent is runnable this step (its pace fires, the
  // child's does not), the child's buffer is not appended to and the
  // parent belongs in wave 0.
  TestDb db;
  SubplanGraph g = ChainGraph(&db);
  std::vector<int> runnable = {g.query_root(0)};
  std::vector<std::vector<int>> waves = sched::BuildWaves(g, runnable);
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0], runnable);
}

TEST(WaveTest, ConcatenationIsAPermutationOfRunnable) {
  TpchDb db(TpchScale{0.001, 3});
  MqoOptimizer mqo(&db.catalog);
  std::vector<QueryPlan> qs = {TpchQuery(db.catalog, 5, 0),
                               TpchQuery(db.catalog, 7, 1),
                               TpchQuery(db.catalog, 17, 2)};
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
  std::vector<int> runnable = g.TopoChildrenFirst();
  std::vector<std::vector<int>> waves = sched::BuildWaves(g, runnable);
  std::vector<int> flat;
  for (size_t w = 0; w < waves.size(); ++w) {
    for (int s : waves[w]) {
      flat.push_back(s);
      // Every runnable child sits in a strictly earlier wave.
      for (int c : g.subplan(s).children) {
        bool found_earlier = false;
        for (size_t pw = 0; pw < w && !found_earlier; ++pw) {
          for (int p : waves[pw]) found_earlier = found_earlier || p == c;
        }
        EXPECT_TRUE(found_earlier) << "child " << c << " of " << s;
      }
    }
  }
  std::set<int> uniq(flat.begin(), flat.end());
  EXPECT_EQ(uniq.size(), flat.size());
  EXPECT_EQ(uniq, std::set<int>(runnable.begin(), runnable.end()));
}

TEST(WaveTest, StaticLevelsCoverEverySubplanOnce) {
  TpchDb db(TpchScale{0.001, 3});
  MqoOptimizer mqo(&db.catalog);
  std::vector<QueryPlan> qs = {TpchQuery(db.catalog, 5, 0),
                               TpchQuery(db.catalog, 9, 1)};
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
  std::vector<std::vector<int>> levels = sched::StaticLevels(g);
  int count = 0;
  std::vector<int> level_of(g.num_subplans(), -1);
  for (size_t l = 0; l < levels.size(); ++l) {
    for (int s : levels[l]) {
      ++count;
      level_of[s] = static_cast<int>(l);
    }
  }
  EXPECT_EQ(count, g.num_subplans());
  for (int s = 0; s < g.num_subplans(); ++s) {
    ASSERT_GE(level_of[s], 0) << s;
    for (int c : g.subplan(s).children) {
      EXPECT_LT(level_of[c], level_of[s]) << "edge " << c << "->" << s;
    }
  }
}

// ---------------------------------------------------------------------------
// The bit-exactness property
// ---------------------------------------------------------------------------

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

::testing::AssertionResult ExactlyEqual(const ResultMap& a,
                                        const ResultMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [row, mult] : a) {
    auto it = b.find(row);
    if (it == b.end()) {
      return ::testing::AssertionFailure()
             << "missing row " << RowToString(row);
    }
    if (it->second != mult) {
      return ::testing::AssertionFailure()
             << "multiplicity differs for " << RowToString(row) << ": "
             << mult << " vs " << it->second;
    }
  }
  return ::testing::AssertionSuccess();
}

struct RunOutput {
  std::string fingerprint;
  std::vector<ResultMap> results;
  // Counters with wall-clock ("seconds") and scheduler-internal
  // ("sched.") series removed: those legitimately differ between serial
  // and parallel runs; everything else must match to the last bit.
  std::map<std::string, double> counters;
};

std::map<std::string, double> CuratedCounters() {
  std::map<std::string, double> out;
  for (const auto& [name, value] : obs::Registry().Snapshot().counters) {
    if (name.find("seconds") != std::string::npos) continue;
    if (name.rfind("sched.", 0) == 0) continue;
    out[name] = value;
  }
  return out;
}

ExecOptions ThreadedOptions(int threads) {
  ExecOptions opts;
  opts.sched.num_threads = threads;
  // Tiny threshold so the aggregate/join morsel paths fire on the small
  // test batches, not just the subplan-level waves.
  opts.sched.morsel_min_tuples = 4;
  return opts;
}

RunOutput RunPace(TpchDb* db, const SubplanGraph& g, const PaceConfig& paces,
                  int threads) {
  // Reset BEFORE construction: executors resolve counter handles in their
  // constructors and Reset() invalidates them.
  obs::Registry().Reset();
  obs::GlobalTracer().Reset();
  // Fresh source per run: consumer registrations accumulate on a shared
  // source's base buffers across executor constructions, and the stale
  // ids would make the two fingerprints differ for reasons that have
  // nothing to do with scheduling.
  StreamSource src;
  CHECK(db->source.CloneTablesInto(&src).ok());
  PaceExecutor exec(&g, &src, ThreadedOptions(threads));
  RunResult r = exec.Run(paces).value();
  (void)r;
  RunOutput out;
  out.fingerprint = exec.StateFingerprint();
  for (QueryId q = 0; q < g.num_queries(); ++q) {
    out.results.push_back(MaterializeResult(*exec.query_output(q), q));
  }
  out.counters = CuratedCounters();
  return out;
}

TEST(SchedEquivalence, ParallelPaceRunsAreBitExactOverRandomSharedPlans) {
  TpchDb db(TpchScale{0.001, 11});
  MqoOptimizer mqo(&db.catalog);
  const int kSeeds = 100;
  const int kThreads[] = {2, 4, 8};
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    int nq = static_cast<int>(2 + rng.UniformInt(0, 2));
    std::vector<QueryPlan> qs;
    for (int q = 0; q < nq; ++q) {
      int qnum = static_cast<int>(1 + rng.UniformInt(0, 21));
      qs.push_back(TpchQuery(db.catalog, qnum, q));
    }
    SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
    PaceConfig paces(g.num_subplans());
    for (int& p : paces) p = static_cast<int>(1 + rng.UniformInt(0, 3));
    int threads = kThreads[seed % 3];

    RunOutput serial = RunPace(&db, g, paces, 1);
    RunOutput parallel = RunPace(&db, g, paces, threads);

    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << "seed " << seed << " threads " << threads;
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (size_t q = 0; q < serial.results.size(); ++q) {
      EXPECT_TRUE(ExactlyEqual(parallel.results[q], serial.results[q]))
          << "seed " << seed << " threads " << threads << " query " << q;
    }
    EXPECT_EQ(parallel.counters, serial.counters)
        << "seed " << seed << " threads " << threads;
  }
}

TEST(SchedEquivalence, AdaptiveParallelRunsAreBitExact) {
  // The adaptive executor's level-parallel path: skip/catch-up decisions
  // are work-based and must replay identically, so fingerprints, results
  // and curated metrics all match the serial run. Smaller sweep — the
  // decision logic, not the operator morsels, is what differs from the
  // pace-executor property above.
  TpchDb db(TpchScale{0.001, 13});
  MqoOptimizer mqo(&db.catalog);
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    std::vector<QueryPlan> qs = {
        TpchQuery(db.catalog, static_cast<int>(1 + rng.UniformInt(0, 21)), 0),
        TpchQuery(db.catalog, static_cast<int>(1 + rng.UniformInt(0, 21)), 1)};
    SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
    PaceConfig paces(g.num_subplans());
    for (int& p : paces) p = static_cast<int>(1 + rng.UniformInt(0, 3));
    int threads = 2 + 2 * (seed % 2);  // 2 or 4

    auto run = [&](int nthreads) {
      // Estimator construction must follow the registry reset: it caches
      // counter handles that Reset() deletes.
      obs::Registry().Reset();
      obs::GlobalTracer().Reset();
      CostEstimator est(&g, &db.catalog);
      StreamSource src;  // fresh consumers, see RunPace
      CHECK(db.source.CloneTablesInto(&src).ok());
      AdaptiveExecutor exec(&est, &src, {1e18, 1e18}, AdaptivePolicy(),
                            ThreadedOptions(nthreads));
      AdaptiveRunResult r = exec.Run(paces).value();
      RunOutput out;
      out.fingerprint = exec.StateFingerprint();
      for (QueryId q = 0; q < g.num_queries(); ++q) {
        out.results.push_back(MaterializeResult(*exec.query_output(q), q));
      }
      out.counters = CuratedCounters();
      // FlowStats ride along in the fingerprint, but check the headline
      // ledger explicitly: admission accounting must not depend on the
      // thread count.
      out.counters["__flow.admitted"] =
          static_cast<double>(r.flow.admitted_tuples);
      out.counters["__stats.skipped"] =
          static_cast<double>(r.stats.skipped_execs);
      out.counters["__stats.catchup"] =
          static_cast<double>(r.stats.catchup_execs);
      return out;
    };

    RunOutput serial = run(1);
    RunOutput parallel = run(threads);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << "seed " << seed << " threads " << threads;
    for (size_t q = 0; q < serial.results.size(); ++q) {
      EXPECT_TRUE(ExactlyEqual(parallel.results[q], serial.results[q]))
          << "seed " << seed << " query " << q;
    }
    EXPECT_EQ(parallel.counters, serial.counters) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ishare
