// Focused tests of the analytic operator models in the subplan simulator:
// join state growth, semi/anti match probabilities, aggregate churn
// saturation, and subplan-input masking.

#include <gtest/gtest.h>

#include "ishare/cost/simulator.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

class SimModelTest : public ::testing::Test {
 protected:
  SimModelTest() : db_(1000, 20) {}
  TestDb db_;
  ExecOptions exec_;
};

TEST_F(SimModelTest, JoinOutputCardinalityMatchesFkExpectation) {
  // orders ⋈ customer on custkey: one customer per order, so the join
  // output should be ~n_orders.
  PlanBuilder b(&db_.catalog, 0);
  PlanNodePtr j = b.Join(b.ScanFiltered("orders", nullptr),
                         b.ScanFiltered("customer", nullptr), {"o_custkey"},
                         {"c_custkey"});
  SimResult r = SimulateSubplan(j, db_.catalog, 1, {}, exec_);
  EXPECT_GT(r.out_card, 600);
  EXPECT_LT(r.out_card, 1500);
}

TEST_F(SimModelTest, JoinCardinalityPaceInvariant) {
  // Total join output should not depend (much) on the pace.
  PlanBuilder b(&db_.catalog, 0);
  PlanNodePtr j = b.Join(b.ScanFiltered("orders", nullptr),
                         b.ScanFiltered("customer", nullptr), {"o_custkey"},
                         {"c_custkey"});
  SimResult lazy = SimulateSubplan(j, db_.catalog, 1, {}, exec_);
  SimResult eager = SimulateSubplan(j, db_.catalog, 10, {}, exec_);
  EXPECT_NEAR(eager.out_card, lazy.out_card, 0.1 * lazy.out_card);
}

TEST_F(SimModelTest, SemiJoinBoundedByLeftCardinality) {
  PlanBuilder b(&db_.catalog, 0);
  PlanNodePtr j = b.Join(b.ScanFiltered("customer", nullptr),
                         b.ScanFiltered("orders", nullptr), {"c_custkey"},
                         {"o_custkey"}, JoinType::kLeftSemi);
  SimResult r = SimulateSubplan(j, db_.catalog, 1, {}, exec_);
  EXPECT_GT(r.out_card, 0);
  EXPECT_LE(r.out_card, db_.catalog.GetStats("customer").row_count * 1.01);
}

TEST_F(SimModelTest, SemiPlusAntiCoverLeftSide) {
  PlanBuilder b(&db_.catalog, 0);
  auto run = [&](JoinType t) {
    PlanNodePtr j = b.Join(b.ScanFiltered("customer", nullptr),
                           b.ScanFiltered("orders", nullptr), {"c_custkey"},
                           {"o_custkey"}, t);
    return SimulateSubplan(j, db_.catalog, 1, {}, exec_).out_card;
  };
  double semi = run(JoinType::kLeftSemi);
  double anti = run(JoinType::kLeftAnti);
  double total = db_.catalog.GetStats("customer").row_count;
  EXPECT_NEAR(semi + anti, total, 0.25 * total);
}

TEST_F(SimModelTest, AggregateChurnGrowsWithPaceUntilSaturation) {
  PlanBuilder b(&db_.catalog, 0);
  PlanNodePtr agg = b.Aggregate(b.ScanFiltered("orders", nullptr),
                                {"o_custkey"},
                                {SumAgg(Col("o_amount"), "t")});
  SimResult p1 = SimulateSubplan(agg, db_.catalog, 1, {}, exec_);
  SimResult p4 = SimulateSubplan(agg, db_.catalog, 4, {}, exec_);
  SimResult p16 = SimulateSubplan(agg, db_.catalog, 16, {}, exec_);
  // Churn (out_card) strictly grows with pace: each extra execution
  // re-touches existing groups.
  EXPECT_GT(p4.out_card, p1.out_card);
  EXPECT_GT(p16.out_card, p4.out_card);
  // At pace 1 there is exactly one insert per group.
  EXPECT_NEAR(p1.out_card, 20, 3);
}

TEST_F(SimModelTest, MinMaxChargesDeletePenalty) {
  PlanBuilder b(&db_.catalog, 0);
  // max over a churny child aggregate: the parent subplan's input carries
  // deletes, which the min/max model penalizes.
  PlanNodePtr inner = b.Aggregate(b.ScanFiltered("orders", nullptr),
                                  {"o_custkey"},
                                  {SumAgg(Col("o_amount"), "t")});
  SimInput in;
  SimResult inner_r = SimulateSubplan(inner, db_.catalog, 8, {}, exec_);
  in.card = inner_r.out_card;
  in.deletes = inner_r.out_deletes;
  in.per_query = inner_r.out_per_query;
  in.profile = inner_r.out_profile;
  EXPECT_GT(in.deletes, 0);

  PlanNodePtr input_leaf =
      PlanNode::MakeSubplanInput(0, inner->output_schema, QuerySet::Single(0));
  PlanNodePtr max_node = PlanNode::MakeAggregate(
      input_leaf, {}, {MaxAgg(Col("t"), "m")}, QuerySet::Single(0));
  PlanNodePtr sum_node = PlanNode::MakeAggregate(
      input_leaf, {}, {SumAgg(Col("t"), "s")}, QuerySet::Single(0));
  SimResult max_r = SimulateSubplan(max_node, db_.catalog, 4, {in}, exec_);
  SimResult sum_r = SimulateSubplan(sum_node, db_.catalog, 4, {in}, exec_);
  EXPECT_GT(max_r.private_total_work, sum_r.private_total_work);
}

TEST_F(SimModelTest, SubplanInputMaskDropsForeignCards) {
  Schema s({{"x", DataType::kInt64}});
  SimInput in;
  in.card = 1000;
  in.deletes = 0;
  in.per_query[0] = 1000;
  in.per_query[1] = 100;
  ColumnStats cs;
  cs.numeric = true;
  cs.ndv = 10;
  in.profile["x"] = cs;

  PlanNodePtr leaf = PlanNode::MakeSubplanInput(0, s, QuerySet::Single(1));
  PlanNodePtr agg = PlanNode::MakeAggregate(leaf, {"x"}, {CountAgg("n")},
                                            QuerySet::Single(1));
  SimResult r = SimulateSubplan(agg, db_.catalog, 1, {in}, exec_);
  // Only q1's ~100 tuples survive the mask; groups capped at ndv 10.
  ASSERT_EQ(r.out_per_query.size(), 1u);
  EXPECT_NEAR(r.out_per_query[1], 10, 3);
}

TEST_F(SimModelTest, FilterSelectivityShapesPerQueryCards) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(db_.catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Lt(Col("o_amount"), Lit(25.0));  // ~25% of [1, 100]
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  SimResult r = SimulateSubplan(filt, db_.catalog, 1, {}, exec_);
  double n = db_.catalog.GetStats("orders").row_count;
  EXPECT_NEAR(r.out_per_query[0], n, 1);          // pass-through
  EXPECT_NEAR(r.out_per_query[1], 0.25 * n, 0.1 * n);
  // Union ≈ q0's full coverage.
  EXPECT_NEAR(r.out_card, n, 1);
}

TEST_F(SimModelTest, StartupCostChargedPerExecution) {
  PlanBuilder b(&db_.catalog, 0);
  PlanNodePtr scan = b.ScanFiltered("orders", nullptr);
  ExecOptions e1;
  e1.startup_cost = 100;
  SimResult p1 = SimulateSubplan(scan, db_.catalog, 1, {}, e1);
  SimResult p5 = SimulateSubplan(scan, db_.catalog, 5, {}, e1);
  EXPECT_NEAR(p5.private_total_work - p1.private_total_work, 400, 1.0);
}

}  // namespace
}  // namespace ishare
