#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ishare/catalog/catalog.h"
#include "ishare/storage/delta_buffer.h"
#include "ishare/storage/stream_source.h"

namespace ishare {
namespace {

Schema OneCol() { return Schema({{"x", DataType::kInt64}}); }

TEST(DeltaBufferTest, IndependentConsumers) {
  DeltaBuffer buf(OneCol(), "t");
  int c1 = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  buf.Append(DeltaTuple({Value(int64_t{2})}, QuerySet::Single(0), 1));

  int c2 = buf.RegisterConsumer();  // starts at offset 0

  DeltaSpan b1 = buf.ConsumeNew(c1).value();
  EXPECT_EQ(b1.size(), 2u);
  EXPECT_EQ(buf.Pending(c1).value(), 0);
  EXPECT_EQ(buf.Pending(c2).value(), 2);

  buf.Append(DeltaTuple({Value(int64_t{3})}, QuerySet::Single(0), 1));
  EXPECT_EQ(buf.ConsumeNew(c1).value().size(), 1u);
  EXPECT_EQ(buf.ConsumeNew(c2).value().size(), 3u);
}

TEST(DeltaBufferTest, ConsumeUpToLimits) {
  DeltaBuffer buf(OneCol());
  int c = buf.RegisterConsumer();
  for (int i = 0; i < 5; ++i) {
    buf.Append(DeltaTuple({Value(int64_t{i})}, QuerySet::Single(0), 1));
  }
  EXPECT_EQ(buf.ConsumeUpTo(c, 2).value().size(), 2u);
  EXPECT_EQ(buf.ConsumeUpTo(c, 10).value().size(), 3u);
  EXPECT_EQ(buf.ConsumeUpTo(c, 10).value().size(), 0u);
}

TEST(DeltaBufferTest, ResetClearsLogAndOffsets) {
  DeltaBuffer buf(OneCol());
  int c = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  (void)buf.ConsumeNew(c);
  buf.Reset();
  EXPECT_EQ(buf.size(), 0);
  EXPECT_EQ(buf.Pending(c).value(), 0);
  buf.Append(DeltaTuple({Value(int64_t{2})}, QuerySet::Single(0), 1));
  EXPECT_EQ(buf.ConsumeNew(c).value().size(), 1u);
}

// Pins the single-writer / multi-reader contract in delta_buffer.h: while
// one producer thread appends, reader threads may poll size(), Pending()
// and ConsumerOffset() for their own ids. The logical size is published
// through an atomic, so every observed value must be a real prefix length
// — monotone, and never beyond what the producer has finished appending.
// (Before the atomic, readers raced on log_.size() mid-push_back; tsan
// flags the old code on this exact test.)
TEST(DeltaBufferTest, ConcurrentPendingDuringAppend) {
  constexpr int64_t kAppends = 20000;
  DeltaBuffer buf(OneCol(), "race");
  int c = buf.RegisterConsumer();

  std::atomic<bool> done{false};
  std::atomic<bool> ok{true};
  std::thread reader([&] {
    int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      int64_t pending = buf.Pending(c).value();
      int64_t sz = buf.size();
      if (pending < 0 || pending > kAppends || sz < last || sz > kAppends) {
        ok.store(false);
      }
      last = sz;
      if (buf.ConsumerOffset(c).value() != 0) ok.store(false);
    }
  });

  for (int64_t i = 0; i < kAppends; ++i) {
    buf.Append(DeltaTuple({Value(i)}, QuerySet::Single(0), 1));
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(ok.load());
  EXPECT_EQ(buf.size(), kAppends);
  EXPECT_EQ(buf.Pending(c).value(), kAppends);
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value(int64_t{i})});
  return rows;
}

TEST(StreamSourceTest, AdvancesByFraction) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(100));
  ASSERT_TRUE(src.AdvanceTo(0.25).ok());
  EXPECT_EQ(buf->size(), 25);
  ASSERT_TRUE(src.AdvanceTo(0.5).ok());
  EXPECT_EQ(buf->size(), 50);
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  EXPECT_EQ(buf->size(), 100);
}

TEST(StreamSourceTest, FractionOneReleasesEverythingDespiteRounding) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(7));
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(src.AdvanceTo(i / 3.0).ok());
  EXPECT_EQ(buf->size(), 7);
}

TEST(StreamSourceTest, ResetAllowsRerun) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(10));
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  src.Reset();
  EXPECT_EQ(buf->size(), 0);
  EXPECT_EQ(src.current_fraction(), 0.0);
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  EXPECT_EQ(buf->size(), 10);
}

TEST(CatalogTest, ComputeTableStats) {
  Schema s({{"k", DataType::kInt64}, {"s", DataType::kString}});
  std::vector<Row> rows = {
      {Value(int64_t{1}), Value("a")},
      {Value(int64_t{2}), Value("a")},
      {Value(int64_t{2}), Value("b")},
  };
  TableStats st = ComputeTableStats(s, rows);
  EXPECT_EQ(st.row_count, 3);
  EXPECT_EQ(st.Column("k")->ndv, 2);
  EXPECT_EQ(st.Column("k")->min, 1);
  EXPECT_EQ(st.Column("k")->max, 2);
  EXPECT_TRUE(st.Column("k")->numeric);
  EXPECT_EQ(st.Column("s")->ndv, 2);
  EXPECT_FALSE(st.Column("s")->numeric);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  EXPECT_TRUE(cat.AddTable("t", OneCol(), TableStats()).ok());
  Status st = cat.AddTable("t", OneCol(), TableStats());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

// ---- Bounded retention (DESIGN.md §9) -------------------------------------

DeltaTuple Tup(int64_t v) {
  return DeltaTuple({Value(v)}, QuerySet::Single(0), 1);
}

TEST(DeltaBufferTrimTest, TrimReclaimsFullyConsumedPrefixAndRebases) {
  DeltaBuffer buf(OneCol(), "t");
  int fast = buf.RegisterConsumer();
  int slow = buf.RegisterConsumer();
  for (int64_t i = 0; i < 6; ++i) buf.Append(Tup(i));
  ASSERT_EQ(buf.ConsumeNew(fast).value().size(), 6u);
  ASSERT_EQ(buf.ConsumeUpTo(slow, 2).value().size(), 2u);

  // Only the prefix both consumers passed (2 tuples) is reclaimable.
  EXPECT_EQ(buf.TrimConsumed(), 2);
  EXPECT_EQ(buf.trimmed(), 2);
  EXPECT_EQ(buf.retained_size(), 4);
  EXPECT_EQ(buf.size(), 6);  // logical size is trim-oblivious
  // Physical index 0 now holds logical offset 2.
  EXPECT_EQ(buf.log()[0].row[0].AsInt(), 2);
  // Nothing more reclaimable until the slow consumer advances.
  EXPECT_EQ(buf.TrimConsumed(), 0);

  // Consumption continues seamlessly across the rebased log.
  DeltaSpan rest = buf.ConsumeNew(slow).value();
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0].row[0].AsInt(), 2);
  EXPECT_EQ(rest[3].row[0].AsInt(), 5);
  EXPECT_EQ(buf.TrimConsumed(), 4);
  EXPECT_EQ(buf.retained_size(), 0);
  EXPECT_EQ(buf.size(), 6);

  // Appends after a full trim keep logical offsets monotone.
  buf.Append(Tup(6));
  EXPECT_EQ(buf.size(), 7);
  EXPECT_EQ(buf.Pending(slow).value(), 1);
  EXPECT_EQ(buf.ConsumeNew(slow).value()[0].row[0].AsInt(), 6);
}

TEST(DeltaBufferTrimTest, BufferWithoutConsumersNeverTrims) {
  DeltaBuffer buf(OneCol(), "root");
  for (int64_t i = 0; i < 4; ++i) buf.Append(Tup(i));
  // Query roots are read out-of-band; no offset proves the data was seen.
  EXPECT_EQ(buf.TrimConsumed(), 0);
  EXPECT_EQ(buf.retained_size(), 4);
  EXPECT_EQ(buf.trimmed(), 0);
}

TEST(DeltaBufferTrimTest, TrimUpdatesRetainedBytesAndBudget) {
  flow::MemoryBudget budget(0);  // track-only
  DeltaBuffer buf(OneCol(), "t");
  buf.AttachBudget(&budget);
  int c = buf.RegisterConsumer();
  for (int64_t i = 0; i < 3; ++i) buf.Append(Tup(i));
  int64_t full = buf.retained_bytes();
  EXPECT_GT(full, 0);
  EXPECT_EQ(budget.used(), full);

  ASSERT_EQ(buf.ConsumeUpTo(c, 1).value().size(), 1u);
  EXPECT_EQ(buf.TrimConsumed(), 1);
  EXPECT_EQ(buf.retained_bytes(), full / 3 * 2);
  EXPECT_EQ(budget.used(), buf.retained_bytes());
  EXPECT_EQ(budget.peak(), full);
}

TEST(DeltaBufferTrimTest, WatermarkHysteresis) {
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  int64_t per_tuple = ApproxDeltaBytes(Tup(0));
  BufferLimits limits;
  limits.soft_limit_bytes = 4 * per_tuple;
  limits.high_watermark = 1.0;
  limits.low_watermark = 0.5;
  buf.set_limits(limits);

  for (int64_t i = 0; i < 3; ++i) buf.Append(Tup(i));
  EXPECT_TRUE(buf.AdmitStatus().ok());
  buf.Append(Tup(3));  // reaches high watermark
  Status st = buf.AdmitStatus();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(st.IsRetryableBackpressure());
  EXPECT_FALSE(st.IsTransient());

  // Draining to 3 tuples (above the low watermark) keeps backpressure on:
  // hysteresis prevents admit/refuse flapping at the limit.
  ASSERT_EQ(buf.ConsumeUpTo(c, 1).value().size(), 1u);
  EXPECT_EQ(buf.TrimConsumed(), 1);
  EXPECT_FALSE(buf.AdmitStatus().ok());

  // Draining to the low watermark (2 tuples) clears it.
  ASSERT_EQ(buf.ConsumeUpTo(c, 1).value().size(), 1u);
  EXPECT_EQ(buf.TrimConsumed(), 1);
  EXPECT_TRUE(buf.AdmitStatus().ok());
}

TEST(DeltaBufferTrimTest, SnapshotRestoreRoundTripsTrimState) {
  DeltaBuffer buf(OneCol(), "t");
  int c0 = buf.RegisterConsumer();
  int c1 = buf.RegisterConsumer();
  for (int64_t i = 0; i < 5; ++i) buf.Append(Tup(i));
  ASSERT_EQ(buf.ConsumeNew(c0).value().size(), 5u);
  ASSERT_EQ(buf.ConsumeUpTo(c1, 3).value().size(), 3u);
  ASSERT_EQ(buf.TrimConsumed(), 3);

  recovery::CheckpointWriter w;
  buf.Snapshot(&w);
  std::string blob = w.Take();

  DeltaBuffer restored(OneCol(), "t");
  restored.RegisterConsumer();
  restored.RegisterConsumer();
  recovery::CheckpointReader r(blob);
  ASSERT_TRUE(restored.Restore(&r).ok()) << r.status().ToString();
  EXPECT_EQ(restored.trimmed(), 3);
  EXPECT_EQ(restored.size(), 5);
  EXPECT_EQ(restored.retained_size(), 2);
  EXPECT_EQ(restored.retained_bytes(), buf.retained_bytes());
  EXPECT_EQ(restored.log()[0].row[0].AsInt(), 3);
  // The slower consumer resumes exactly where it left off.
  EXPECT_EQ(restored.Pending(1).value(), 2);
  EXPECT_EQ(restored.ConsumeNew(1).value()[0].row[0].AsInt(), 3);
}

TEST(DeltaBufferTrimTest, RestoreRejectsOffsetBelowTrimBase) {
  // A checkpoint whose consumer offset points below the trim base refers
  // to tuples that no longer exist; restore must fail, not wrap around.
  DeltaBuffer buf(OneCol(), "t");
  int c = buf.RegisterConsumer();
  for (int64_t i = 0; i < 4; ++i) buf.Append(Tup(i));
  ASSERT_EQ(buf.ConsumeNew(c).value().size(), 4u);
  ASSERT_EQ(buf.TrimConsumed(), 4);

  recovery::CheckpointWriter w;
  w.I64(buf.trimmed());  // base offset 4
  w.U64(0);              // empty retained log
  w.U64(1);              // one consumer...
  w.I64(2);              // ...parked below the trim base
  std::string blob = w.Take();
  recovery::CheckpointReader r(blob);
  DeltaBuffer target(OneCol(), "t");
  target.RegisterConsumer();
  Status st = target.Restore(&r);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace ishare
