#include <gtest/gtest.h>

#include "ishare/catalog/catalog.h"
#include "ishare/storage/delta_buffer.h"
#include "ishare/storage/stream_source.h"

namespace ishare {
namespace {

Schema OneCol() { return Schema({{"x", DataType::kInt64}}); }

TEST(DeltaBufferTest, IndependentConsumers) {
  DeltaBuffer buf(OneCol(), "t");
  int c1 = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  buf.Append(DeltaTuple({Value(int64_t{2})}, QuerySet::Single(0), 1));

  int c2 = buf.RegisterConsumer();  // starts at offset 0

  DeltaSpan b1 = buf.ConsumeNew(c1).value();
  EXPECT_EQ(b1.size(), 2u);
  EXPECT_EQ(buf.Pending(c1).value(), 0);
  EXPECT_EQ(buf.Pending(c2).value(), 2);

  buf.Append(DeltaTuple({Value(int64_t{3})}, QuerySet::Single(0), 1));
  EXPECT_EQ(buf.ConsumeNew(c1).value().size(), 1u);
  EXPECT_EQ(buf.ConsumeNew(c2).value().size(), 3u);
}

TEST(DeltaBufferTest, ConsumeUpToLimits) {
  DeltaBuffer buf(OneCol());
  int c = buf.RegisterConsumer();
  for (int i = 0; i < 5; ++i) {
    buf.Append(DeltaTuple({Value(int64_t{i})}, QuerySet::Single(0), 1));
  }
  EXPECT_EQ(buf.ConsumeUpTo(c, 2).value().size(), 2u);
  EXPECT_EQ(buf.ConsumeUpTo(c, 10).value().size(), 3u);
  EXPECT_EQ(buf.ConsumeUpTo(c, 10).value().size(), 0u);
}

TEST(DeltaBufferTest, ResetClearsLogAndOffsets) {
  DeltaBuffer buf(OneCol());
  int c = buf.RegisterConsumer();
  buf.Append(DeltaTuple({Value(int64_t{1})}, QuerySet::Single(0), 1));
  (void)buf.ConsumeNew(c);
  buf.Reset();
  EXPECT_EQ(buf.size(), 0);
  EXPECT_EQ(buf.Pending(c).value(), 0);
  buf.Append(DeltaTuple({Value(int64_t{2})}, QuerySet::Single(0), 1));
  EXPECT_EQ(buf.ConsumeNew(c).value().size(), 1u);
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value(int64_t{i})});
  return rows;
}

TEST(StreamSourceTest, AdvancesByFraction) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(100));
  ASSERT_TRUE(src.AdvanceTo(0.25).ok());
  EXPECT_EQ(buf->size(), 25);
  ASSERT_TRUE(src.AdvanceTo(0.5).ok());
  EXPECT_EQ(buf->size(), 50);
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  EXPECT_EQ(buf->size(), 100);
}

TEST(StreamSourceTest, FractionOneReleasesEverythingDespiteRounding) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(7));
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(src.AdvanceTo(i / 3.0).ok());
  EXPECT_EQ(buf->size(), 7);
}

TEST(StreamSourceTest, ResetAllowsRerun) {
  StreamSource src;
  DeltaBuffer* buf = src.AddTable("t", OneCol(), MakeRows(10));
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  src.Reset();
  EXPECT_EQ(buf->size(), 0);
  EXPECT_EQ(src.current_fraction(), 0.0);
  ASSERT_TRUE(src.AdvanceTo(1.0).ok());
  EXPECT_EQ(buf->size(), 10);
}

TEST(CatalogTest, ComputeTableStats) {
  Schema s({{"k", DataType::kInt64}, {"s", DataType::kString}});
  std::vector<Row> rows = {
      {Value(int64_t{1}), Value("a")},
      {Value(int64_t{2}), Value("a")},
      {Value(int64_t{2}), Value("b")},
  };
  TableStats st = ComputeTableStats(s, rows);
  EXPECT_EQ(st.row_count, 3);
  EXPECT_EQ(st.Column("k")->ndv, 2);
  EXPECT_EQ(st.Column("k")->min, 1);
  EXPECT_EQ(st.Column("k")->max, 2);
  EXPECT_TRUE(st.Column("k")->numeric);
  EXPECT_EQ(st.Column("s")->ndv, 2);
  EXPECT_FALSE(st.Column("s")->numeric);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  EXPECT_TRUE(cat.AddTable("t", OneCol(), TableStats()).ok());
  Status st = cat.AddTable("t", OneCol(), TableStats());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace ishare
