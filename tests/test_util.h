#ifndef ISHARE_TESTS_TEST_UTIL_H_
#define ISHARE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ishare/catalog/catalog.h"
#include "ishare/common/rng.h"
#include "ishare/plan/builder.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// A small deterministic sales dataset used across engine tests:
//   orders(o_id, o_custkey, o_amount)
//   customer(c_custkey, c_region)
class TestDb {
 public:
  explicit TestDb(int n_orders = 60, int n_customers = 10, uint64_t seed = 42) {
    Rng rng(seed);
    Schema orders({{"o_id", DataType::kInt64},
                   {"o_custkey", DataType::kInt64},
                   {"o_amount", DataType::kFloat64}});
    Schema customer(
        {{"c_custkey", DataType::kInt64}, {"c_region", DataType::kString}});

    std::vector<Row> order_rows;
    for (int i = 0; i < n_orders; ++i) {
      order_rows.push_back({Value(int64_t{i}),
                            Value(rng.UniformInt(0, n_customers - 1)),
                            Value(rng.UniformDouble(1.0, 100.0))});
    }
    std::vector<Row> customer_rows;
    const char* regions[] = {"ASIA", "EUROPE", "AMERICA"};
    for (int i = 0; i < n_customers; ++i) {
      customer_rows.push_back(
          {Value(int64_t{i}), Value(std::string(regions[i % 3]))});
    }

    CHECK(catalog
              .AddTable("orders", orders,
                        ComputeTableStats(orders, order_rows))
              .ok());
    CHECK(catalog
              .AddTable("customer", customer,
                        ComputeTableStats(customer, customer_rows))
              .ok());
    source.AddTable("orders", orders, std::move(order_rows));
    source.AddTable("customer", customer, std::move(customer_rows));
  }

  Catalog catalog;
  StreamSource source;
};

// Compares two materialized results with a relative tolerance on doubles:
// incremental execution accumulates floating-point sums in a different
// order than batch execution, so bit-exact comparison is too strict.
inline bool RowsNear(const Row& a, const Row& b, double tol = 1e-6) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_string() || b[i].is_string() ||
        (a[i].is_int() && b[i].is_int())) {
      if (!(a[i] == b[i])) return false;
    } else {
      double x = a[i].AsDouble(), y = b[i].AsDouble();
      double scale = std::max({1.0, std::abs(x), std::abs(y)});
      if (std::abs(x - y) > tol * scale) return false;
    }
  }
  return true;
}

inline ::testing::AssertionResult ResultsNear(
    const std::unordered_map<Row, int64_t, RowHasher>& a,
    const std::unordered_map<Row, int64_t, RowHasher>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  std::vector<std::pair<Row, int64_t>> unmatched(b.begin(), b.end());
  for (const auto& [row, count] : a) {
    bool found = false;
    for (size_t i = 0; i < unmatched.size(); ++i) {
      if (unmatched[i].second == count && RowsNear(row, unmatched[i].first)) {
        unmatched[i] = unmatched.back();
        unmatched.pop_back();
        found = true;
        break;
      }
    }
    if (!found) {
      return ::testing::AssertionFailure()
             << "no match for row " << RowToString(row) << " x" << count;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace ishare

#endif  // ISHARE_TESTS_TEST_UTIL_H_
