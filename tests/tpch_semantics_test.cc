// Semantic spot checks: a handful of TPC-H queries are recomputed directly
// from the raw generated rows (independent reference implementations) and
// compared against the engine's results. This validates the *query
// definitions* — join keys, predicates, aggregate arguments — not just the
// engine's incremental/batch equivalence.

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "ishare/exec/pace_executor.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

class TpchSemantics : public ::testing::Test {
 protected:
  static TpchDb* Db() {
    static TpchDb* db = new TpchDb(TpchScale{0.004, 17});
    return db;
  }

  // Raw rows of a base table (reads the fully released stream).
  static std::vector<Row> Rows(const std::string& table) {
    Db()->Reset();
    CHECK(Db()->source.AdvanceTo(1.0).ok());
    std::vector<Row> out;
    for (const DeltaTuple& t : Db()->source.buffer(table)->log()) {
      out.push_back(t.row);
    }
    return out;
  }

  static int Idx(const std::string& table, const std::string& col) {
    return Db()->catalog.GetSchema(table).IndexOfOrDie(col);
  }

  static std::unordered_map<Row, int64_t, RowHasher> RunQuery(
      const QueryPlan& q) {
    Db()->Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &Db()->source);
    exec.Run(PaceConfig(g.num_subplans(), 1)).value();
    return MaterializeResult(*exec.query_output(q.id), q.id);
  }
};

TEST_F(TpchSemantics, Q6RevenueMatchesDirectComputation) {
  std::vector<Row> li = Rows("lineitem");
  int ship = Idx("lineitem", "l_shipdate");
  int disc = Idx("lineitem", "l_discount");
  int qty = Idx("lineitem", "l_quantity");
  int price = Idx("lineitem", "l_extendedprice");
  double expect = 0;
  int64_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  for (const Row& r : li) {
    int64_t d = r[ship].AsInt();
    double dc = r[disc].AsDouble();
    if (d >= lo && d < hi && dc >= 0.05 - 0.001 && dc <= 0.07 + 0.001 &&
        r[qty].AsDouble() < 24.0) {
      expect += r[price].AsDouble() * dc;
    }
  }
  auto res = RunQuery(TpchQuery(Db()->catalog, 6, 0));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_NEAR(res.begin()->first[0].AsDouble(), expect,
              1e-6 * std::max(1.0, std::abs(expect)));
}

TEST_F(TpchSemantics, Q1GroupSumsMatchDirectComputation) {
  std::vector<Row> li = Rows("lineitem");
  int ship = Idx("lineitem", "l_shipdate");
  int rf = Idx("lineitem", "l_returnflag");
  int ls = Idx("lineitem", "l_linestatus");
  int qty = Idx("lineitem", "l_quantity");
  int64_t cutoff = TpchDate(1998, 12, 1) - 90;
  std::map<std::pair<std::string, std::string>, std::pair<double, int64_t>>
      expect;  // (rf, ls) -> (sum_qty, count)
  for (const Row& r : li) {
    if (r[ship].AsInt() > cutoff) continue;
    auto& slot = expect[{r[rf].AsString(), r[ls].AsString()}];
    slot.first += r[qty].AsDouble();
    slot.second += 1;
  }
  auto res = RunQuery(TpchQuery(Db()->catalog, 1, 0));
  ASSERT_EQ(res.size(), expect.size());
  // Output schema: rf, ls, sum_qty, ..., count_order (last).
  for (const auto& [row, mult] : res) {
    auto it = expect.find({row[0].AsString(), row[1].AsString()});
    ASSERT_NE(it, expect.end());
    EXPECT_NEAR(row[2].AsDouble(), it->second.first, 1e-6 * it->second.first);
    EXPECT_EQ(row.back().AsInt(), it->second.second);
  }
}

TEST_F(TpchSemantics, Q4SemiJoinCountsMatchDirectComputation) {
  std::vector<Row> orders = Rows("orders");
  std::vector<Row> li = Rows("lineitem");
  int odate = Idx("orders", "o_orderdate");
  int okey = Idx("orders", "o_orderkey");
  int oprio = Idx("orders", "o_orderpriority");
  int lkey = Idx("lineitem", "l_orderkey");
  int commit = Idx("lineitem", "l_commitdate");
  int receipt = Idx("lineitem", "l_receiptdate");

  std::unordered_set<int64_t> late_orders;
  for (const Row& r : li) {
    if (r[commit].AsInt() < r[receipt].AsInt()) {
      late_orders.insert(r[lkey].AsInt());
    }
  }
  int64_t lo = TpchDate(1993, 7, 1), hi = TpchDate(1993, 10, 1);
  std::map<std::string, int64_t> expect;
  for (const Row& r : orders) {
    int64_t d = r[odate].AsInt();
    if (d >= lo && d < hi && late_orders.count(r[okey].AsInt()) > 0) {
      expect[r[oprio].AsString()] += 1;
    }
  }
  auto res = RunQuery(TpchQuery(Db()->catalog, 4, 0));
  ASSERT_EQ(res.size(), expect.size());
  for (const auto& [row, mult] : res) {
    auto it = expect.find(row[0].AsString());
    ASSERT_NE(it, expect.end()) << row[0].AsString();
    EXPECT_EQ(row[1].AsInt(), it->second);
  }
}

TEST_F(TpchSemantics, Q13DistributionMatchesDirectComputation) {
  std::vector<Row> orders = Rows("orders");
  int ckey = Idx("orders", "o_custkey");
  int comment = Idx("orders", "o_comment");
  std::map<int64_t, int64_t> per_cust;
  for (const Row& r : orders) {
    if (LikeMatch(r[comment].AsString(), "%special%requests%")) continue;
    per_cust[r[ckey].AsInt()] += 1;
  }
  std::map<int64_t, int64_t> expect;  // c_count -> customers
  for (const auto& [c, n] : per_cust) expect[n] += 1;
  auto res = RunQuery(TpchQuery(Db()->catalog, 13, 0));
  ASSERT_EQ(res.size(), expect.size());
  for (const auto& [row, mult] : res) {
    auto it = expect.find(row[0].AsInt());
    ASSERT_NE(it, expect.end());
    EXPECT_EQ(row[1].AsInt(), it->second);
  }
}

TEST_F(TpchSemantics, Q22AntiJoinMatchesDirectComputation) {
  std::vector<Row> cust = Rows("customer");
  std::vector<Row> orders = Rows("orders");
  int ckey = Idx("customer", "c_custkey");
  int bal = Idx("customer", "c_acctbal");
  int cc = Idx("customer", "c_phonecc");
  int ockey = Idx("orders", "o_custkey");

  std::unordered_set<std::string> ccs = {"13", "31", "23", "29",
                                         "30", "18", "17"};
  double sum = 0;
  int64_t n = 0;
  for (const Row& r : cust) {
    if (ccs.count(r[cc].AsString()) > 0 && r[bal].AsDouble() > 0) {
      sum += r[bal].AsDouble();
      ++n;
    }
  }
  double avg = n > 0 ? sum / static_cast<double>(n) : 0;
  std::unordered_set<int64_t> has_orders;
  for (const Row& r : orders) has_orders.insert(r[ockey].AsInt());

  std::map<std::string, std::pair<int64_t, double>> expect;
  for (const Row& r : cust) {
    if (ccs.count(r[cc].AsString()) == 0) continue;
    if (has_orders.count(r[ckey].AsInt()) > 0) continue;
    if (r[bal].AsDouble() <= avg) continue;
    auto& slot = expect[r[cc].AsString()];
    slot.first += 1;
    slot.second += r[bal].AsDouble();
  }
  auto res = RunQuery(TpchQuery(Db()->catalog, 22, 0));
  ASSERT_EQ(res.size(), expect.size());
  for (const auto& [row, mult] : res) {
    auto it = expect.find(row[0].AsString());
    ASSERT_NE(it, expect.end());
    EXPECT_EQ(row[1].AsInt(), it->second.first);
    EXPECT_NEAR(row[2].AsDouble(), it->second.second,
                1e-6 * std::max(1.0, it->second.second));
  }
}

TEST_F(TpchSemantics, Q18BigOrdersMatchDirectComputation) {
  std::vector<Row> li = Rows("lineitem");
  int lkey = Idx("lineitem", "l_orderkey");
  int qty = Idx("lineitem", "l_quantity");
  std::map<int64_t, double> per_order;
  for (const Row& r : li) per_order[r[lkey].AsInt()] += r[qty].AsDouble();
  int64_t big = 0;
  for (const auto& [o, q] : per_order) {
    if (q > 300.0) ++big;
  }
  // The engine's Q18 groups by order (plus customer columns): one result
  // row per big order.
  auto res = RunQuery(TpchQuery(Db()->catalog, 18, 0));
  EXPECT_EQ(static_cast<int64_t>(res.size()), big);
}

}  // namespace
}  // namespace ishare
