#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

// One shared tiny dataset for the whole file (generation is not free).
TpchDb* Db() {
  static TpchDb* db = new TpchDb(TpchScale{0.005, 7});
  return db;
}

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

ResultMap RunOne(const QueryPlan& q, int pace) {
  Db()->Reset();
  SubplanGraph g = SubplanGraph::Build({q});
  PaceExecutor exec(&g, &Db()->source);
  exec.Run(PaceConfig(g.num_subplans(), pace)).value();
  return MaterializeResult(*exec.query_output(q.id), q.id);
}

TEST(TpchDataTest, TablesHaveExpectedShape) {
  const Catalog& cat = Db()->catalog;
  EXPECT_TRUE(cat.HasTable("lineitem"));
  EXPECT_TRUE(cat.HasTable("orders"));
  EXPECT_EQ(cat.GetStats("region").row_count, 5);
  EXPECT_EQ(cat.GetStats("nation").row_count, 25);
  EXPECT_GT(cat.GetStats("lineitem").row_count,
            cat.GetStats("orders").row_count);
  EXPECT_EQ(cat.GetStats("partsupp").row_count,
            4 * cat.GetStats("part").row_count);
}

TEST(TpchDataTest, DateEncoding) {
  EXPECT_EQ(TpchDate(1992, 1, 1), 0);
  EXPECT_EQ(TpchDate(1992, 2, 1), 31);
  EXPECT_EQ(TpchDate(1993, 1, 1), 365);
  EXPECT_LT(TpchDate(1995, 3, 15), TpchDate(1995, 9, 15));
}

TEST(TpchDataTest, StatsMatchGeneratedDomains) {
  const TableStats& part = Db()->catalog.GetStats("part");
  EXPECT_LE(part.Column("p_brand")->ndv, 25);
  EXPECT_GE(part.Column("p_size")->min, 1);
  EXPECT_LE(part.Column("p_size")->max, 50);
  const TableStats& li = Db()->catalog.GetStats("lineitem");
  EXPECT_GE(li.Column("l_discount")->min, 0.0);
  EXPECT_LE(li.Column("l_discount")->max, 0.101);
}

// Every TPC-H query builds, validates, runs in batch mode and produces the
// same result incrementally — the workload-level engine invariant.
class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, BuildsAndValidates) {
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0);
  ASSERT_NE(q.root, nullptr);
  SubplanGraph g = SubplanGraph::Build({q});
  EXPECT_TRUE(g.Validate().ok()) << g.ToString();
}

TEST_P(TpchQueryTest, IncrementalMatchesBatch) {
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0);
  ResultMap batch = RunOne(q, 1);
  ResultMap inc = RunOne(q, 5);
  EXPECT_TRUE(ResultsNear(inc, batch)) << q.name;
}

TEST_P(TpchQueryTest, BatchResultNonTrivial) {
  // Every query should produce at least one result row on the test data
  // (predicates were checked against the generator's domains).
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0);
  ResultMap batch = RunOne(q, 1);
  EXPECT_GT(batch.size(), 0u) << q.name << " produced no rows";
}

TEST_P(TpchQueryTest, VariantBuildsAndRuns) {
  QueryPlan q = TpchQuery(Db()->catalog, GetParam(), 0, /*variant=*/true);
  ResultMap batch = RunOne(q, 1);
  ResultMap inc = RunOne(q, 3);
  EXPECT_TRUE(ResultsNear(inc, batch)) << q.name;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Range(1, 23));

TEST(TpchWorkloadTest, PaperQueriesShareTheFig2Structure) {
  QueryPlan qa = PaperQueryA(Db()->catalog, 0);
  QueryPlan qb = PaperQueryB(Db()->catalog, 1);
  MqoOptimizer mqo(&Db()->catalog);
  std::vector<QueryPlan> merged = mqo.Merge({qa, qb});
  SubplanGraph g = SubplanGraph::Build(merged);
  ASSERT_TRUE(g.Validate().ok());
  // The part ⋈ agg(lineitem) join must be shared by both queries.
  bool found_shared_join = false;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() == 2) found_shared_join = true;
  }
  EXPECT_TRUE(found_shared_join);
}

TEST(TpchWorkloadTest, PaperQueriesExecuteEquivalently) {
  QueryPlan qa = PaperQueryA(Db()->catalog, 0);
  QueryPlan qb = PaperQueryB(Db()->catalog, 1);
  ResultMap ra = RunOne(qa, 1);
  ResultMap rb = RunOne(qb, 1);
  EXPECT_EQ(ra.size(), 1u);  // single global sum

  MqoOptimizer mqo(&Db()->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge({qa, qb}));
  Db()->Reset();
  PaceExecutor exec(&g, &Db()->source);
  exec.Run(PaceConfig(g.num_subplans(), 3)).value();
  EXPECT_TRUE(ResultsNear(MaterializeResult(*exec.query_output(0), 0), ra));
  EXPECT_TRUE(ResultsNear(MaterializeResult(*exec.query_output(1), 1), rb));
}

TEST(TpchWorkloadTest, MergedFullWorkloadMatchesStandalone) {
  std::vector<QueryPlan> queries = AllTpchQueries(Db()->catalog);
  std::vector<ResultMap> ref;
  ref.reserve(queries.size());
  for (const QueryPlan& q : queries) ref.push_back(RunOne(q, 1));

  MqoOptimizer mqo(&Db()->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(queries));
  ASSERT_TRUE(g.Validate().ok());
  Db()->Reset();
  PaceExecutor exec(&g, &Db()->source);
  exec.Run(PaceConfig(g.num_subplans(), 2)).value();
  for (const QueryPlan& q : queries) {
    EXPECT_TRUE(
        ResultsNear(MaterializeResult(*exec.query_output(q.id), q.id),
                    ref[q.id]))
        << q.name;
  }
}

TEST(TpchWorkloadTest, SharingFriendlySetSharesSubplans) {
  std::vector<QueryPlan> queries = SharingFriendlyQueries(Db()->catalog);
  EXPECT_EQ(queries.size(), 10u);
  MqoOptimizer mqo(&Db()->catalog);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(queries));
  int shared = 0;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() >= 2) ++shared;
  }
  EXPECT_GT(shared, 0) << "sharing-friendly queries found no sharing";
}

TEST(TpchWorkloadTest, DecompositionWorkloadHasVariantPairs) {
  std::vector<QueryPlan> queries = DecompositionWorkload(Db()->catalog);
  EXPECT_EQ(queries.size(), 20u);
  EXPECT_EQ(queries[10].name, queries[0].name + "v");
}

}  // namespace
}  // namespace ishare
