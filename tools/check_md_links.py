#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scope is deliberately narrow so CI needs no network: only inline links
and images whose target is a relative path are verified against the
working tree. http(s)/mailto targets and pure #fragment anchors are
skipped. Exit status is the number of broken links (capped at 1).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", "build-asan", "build-noobs", "third_party"}

# Inline [text](target) / ![alt](target); target ends at the first
# unescaped ')' or whitespace (titles like (file.md "x") are handled).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks are stripped before link extraction.
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files():
    for dirpath, dirnames, filenames in os.walk(ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main():
    broken = []
    for md in markdown_files():
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            # Strip a trailing #section anchor from file targets.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), file_part))
            if not os.path.exists(resolved):
                rel_md = os.path.relpath(md, ROOT)
                broken.append(f"{rel_md}:{lineno}: broken link -> {target}")
    for b in broken:
        print(b)
    count = sum(1 for md in markdown_files())
    print(f"checked {count} markdown files, {len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
