#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scope is deliberately narrow so CI needs no network: only inline links
and images whose target is a relative path are verified against the
working tree. http(s)/mailto targets and pure #fragment anchors are
skipped.

Additionally cross-checks EXPERIMENTS.md against the bench binaries:
every `.../bench/bench_<name>` command mentioned must correspond to a
`bench/bench_<name>.cc` source (the binary name equals the source stem),
and every bench source must be mentioned at least once — so the command
index can neither drift ahead of the build nor silently omit a bench.
Exit status is the number of problems (capped at 1).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", "build-asan", "build-noobs", "third_party"}

# Inline [text](target) / ![alt](target); target ends at the first
# unescaped ')' or whitespace (titles like (file.md "x") are handled).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks are stripped before link extraction.
FENCE_RE = re.compile(r"^(```|~~~)")
# Bench invocations: `./build/bench/bench_foo`, `build-asan/bench/bench_foo`.
# These appear in tables AND fenced command blocks, so the whole file is
# scanned (unlike links, where fences are skipped).
BENCH_RE = re.compile(r"[\w.-]*build[\w-]*/bench/(bench_\w+)")


def markdown_files():
    for dirpath, dirnames, filenames in os.walk(ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_bench_index():
    """EXPERIMENTS.md command-index entries <-> bench/*.cc sources."""
    problems = []
    experiments = os.path.join(ROOT, "EXPERIMENTS.md")
    bench_dir = os.path.join(ROOT, "bench")
    if not os.path.exists(experiments) or not os.path.isdir(bench_dir):
        return problems
    sources = {
        name[:-len(".cc")]
        for name in os.listdir(bench_dir)
        if name.startswith("bench_") and name.endswith(".cc")
    }
    mentioned = {}
    with open(experiments, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for m in BENCH_RE.finditer(line):
                mentioned.setdefault(m.group(1), lineno)
    for name, lineno in sorted(mentioned.items()):
        if name not in sources:
            problems.append(
                f"EXPERIMENTS.md:{lineno}: references {name} but "
                f"bench/{name}.cc does not exist")
    for name in sorted(sources - set(mentioned)):
        problems.append(
            f"EXPERIMENTS.md: bench/{name}.cc has no command-index entry "
            f"(no build/bench/{name} mention)")
    return problems


def main():
    broken = []
    for md in markdown_files():
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            # Strip a trailing #section anchor from file targets.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), file_part))
            if not os.path.exists(resolved):
                rel_md = os.path.relpath(md, ROOT)
                broken.append(f"{rel_md}:{lineno}: broken link -> {target}")
    bench_problems = check_bench_index()
    for b in broken + bench_problems:
        print(b)
    count = sum(1 for md in markdown_files())
    print(f"checked {count} markdown files, {len(broken)} broken links, "
          f"{len(bench_problems)} bench-index problems")
    return 1 if (broken or bench_problems) else 0


if __name__ == "__main__":
    sys.exit(main())
